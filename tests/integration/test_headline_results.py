"""Integration tests asserting the paper's headline results hold.

Each test regenerates one of the paper's experiments at ``quick`` scale
and checks bands/orderings -- not exact values, since the Monte-Carlo
populations are far smaller than the paper's 1e9 systems and the traces
are synthetic (see DESIGN.md).
"""

import pytest

from repro.analysis import run_experiment


@pytest.fixture(scope="module")
def fig1():
    return run_experiment("fig1", scale="quick")


@pytest.fixture(scope="module")
def fig7():
    return run_experiment("fig7", scale="quick")


@pytest.fixture(scope="module")
def fig8():
    return run_experiment("fig8", scale="quick")


class TestFigure1:
    def test_ecc_dimm_adds_nothing_over_non_ecc(self, fig1):
        results = fig1.data["results"]
        non_ecc = results["Non-ECC DIMM (On-Die ECC)"]
        ecc = results["ECC-DIMM (SECDED)"]
        # Within 25%: the 9th chip even makes things slightly worse
        # (12.5% more chips), the paper's Figure-1 point.
        ratio = ecc.probability_of_failure / non_ecc.probability_of_failure
        assert 0.9 < ratio < 1.35

    def test_chipkill_much_better_than_ecc_dimm(self, fig1):
        # Paper: 43x.  Accept a generous band around it.
        assert 15 < fig1.data["chipkill_vs_eccdimm"] < 150

    def test_ecc_dimm_failure_probability_band(self, fig1):
        ecc = fig1.data["results"]["ECC-DIMM (SECDED)"]
        # ~33.3 visible FIT x 72 chips x 7y -> ~13% of systems fail.
        assert 0.10 < ecc.probability_of_failure < 0.18


class TestFigure7:
    def test_xed_vs_ecc_dimm_band(self, fig7):
        # Paper: 172x.
        assert 80 < fig7.data["xed_vs_eccdimm"] < 400

    def test_xed_vs_chipkill_band(self, fig7):
        # Paper: 4x (the C(18,2)/C(9,2) = 4.25 chip-count argument).
        assert 2.0 < fig7.data["xed_vs_chipkill"] < 8.0

    def test_ordering(self, fig7):
        results = fig7.data["results"]
        ecc = results["ECC-DIMM (SECDED)"].probability_of_failure
        ck = results["Chipkill (18 chips)"].probability_of_failure
        xed = results["XED (9 chips)"].probability_of_failure
        assert xed < ck < ecc

    def test_curves_monotone(self, fig7):
        for result in fig7.data["results"].values():
            probs = [p for _, p in result.curve()]
            assert probs == sorted(probs)


class TestFigure8:
    def test_ordering_unchanged_with_scaling(self, fig8):
        results = fig8.data["results"]
        ecc = results["ECC-DIMM (SECDED)"].probability_of_failure
        ck = results["Chipkill (18 chips)"].probability_of_failure
        xed = results["XED (9 chips)"].probability_of_failure
        assert xed < ck < ecc

    def test_xed_ratio_stable_under_scaling(self, fig7, fig8):
        without = fig7.data["xed_vs_eccdimm"]
        with_scaling = fig8.data["xed_vs_eccdimm"]
        # The paper reports 172x in both figures.
        assert with_scaling == pytest.approx(without, rel=0.6)


class TestFigure9And10:
    @pytest.fixture(scope="class")
    def fig9(self):
        return run_experiment("fig9", scale="quick")

    def test_double_chipkill_beats_single(self, fig9):
        # Paper: ~an order of magnitude.
        assert fig9.data["double_vs_single"] > 4

    def test_xed_chipkill_at_least_double_chipkill_level(self, fig9):
        results = fig9.data["results"]
        xed_ck = results["XED + Single-Chipkill (18 chips)"]
        double = results["Double-Chipkill (36 chips)"]
        assert (
            xed_ck.probability_of_failure <= double.probability_of_failure
        )

    def test_scaling_variant_preserves_ordering(self):
        fig10 = run_experiment("fig10", scale="quick")
        results = fig10.data["results"]
        single = results["Chipkill (18 chips)"].probability_of_failure
        double = results["Double-Chipkill (36 chips)"].probability_of_failure
        xed_ck = results[
            "XED + Single-Chipkill (18 chips)"
        ].probability_of_failure
        assert xed_ck <= double < single


class TestTableExperiments:
    def test_table2_shape(self):
        report = run_experiment("table2", scale="quick")
        aligned = report.data["aligned"]
        # CRC8 bursts all 100%; Hamming weaker on the even bursts.
        crc_burst = aligned.rates["CRC8-ATM"]["burst"]
        ham_burst = aligned.rates["Hamming"]["burst"]
        assert all(rate == 1.0 for rate in crc_burst)
        assert min(ham_burst) < 1.0

    def test_table3_paper_column(self):
        rows = run_experiment("table3").data["rows"]
        assert rows[1e-4]["paper_approx"] == pytest.approx(2.05e-5, rel=0.02)

    def test_table4_values(self):
        table = run_experiment("table4").data["table"]
        assert table.word_failure_due == pytest.approx(6.1e-6, rel=0.05)
        assert 1e-4 < table.multi_chip_data_loss < 2e-3

    def test_fig6_headline(self):
        report = run_experiment("fig6")
        assert report.data["x8_mean_years"] == pytest.approx(3.2e6, rel=0.05)
        assert report.data["x4_mean_hours"] == pytest.approx(6.6, rel=0.05)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")
        with pytest.raises(ValueError):
            run_experiment("fig7", scale="huge")
