"""End-to-end tests of the instrumented stack.

These flip the global OBS switch, drive the behavioural controllers,
campaigns, the Monte-Carlo engine and the CLI, and assert that the
correction-event telemetry the paper's whole argument rests on actually
comes out the other side.
"""

import json

import pytest

from repro.core import PatrolScrubber, XedChipkillController, XedController
from repro.dram import XedDimm
from repro.dram.dimm import ChipkillRank
from repro.faultsim import campaign
from repro.obs import OBS


@pytest.fixture(autouse=True)
def _obs_enabled():
    OBS.reset()
    OBS.enable()
    yield
    OBS.disable()
    OBS.reset()


def counters():
    return OBS.registry.snapshot()["counters"]


class TestControllerTelemetry:
    def test_erasure_read_emits_detection_and_reconstruction(self):
        dimm = XedDimm.build(seed=7)
        ctrl = XedController(dimm)
        ctrl.write_line(0, 0, 0, [0xDEAD + i for i in range(8)])
        dimm.inject_chip_failure(chip=3)
        result = ctrl.read_line(0, 0, 0)
        assert result.ok

        c = counters()
        assert c["controller.reads"] == 1
        assert c["catch_word_detected"] >= 1
        assert c["erasure_reconstruction"] == 1

        kinds = OBS.trace.counts_by_kind()
        assert kinds["catch_word_detected"] >= 1
        assert kinds["erasure_reconstruction"] == 1
        recon = [
            e for e in OBS.trace if e.kind == "erasure_reconstruction"
        ][0]
        assert recon.chip == 3 and recon.method == "catch_word"

    def test_clean_read_emits_no_events(self):
        dimm = XedDimm.build(seed=9)
        ctrl = XedController(dimm)
        ctrl.write_line(0, 0, 0, list(range(8)))
        OBS.reset()
        ctrl.read_line(0, 0, 0)
        assert counters()["controller.reads"] == 1
        assert len(OBS.trace) == 0

    def test_chipkill_controller_telemetry(self):
        rank = ChipkillRank(seed=3)
        ctrl = XedChipkillController(rank)
        ctrl.write_line(0, 0, 0, list(range(16)))
        rank.inject_chip_failure(chip=2)
        rank.inject_chip_failure(chip=9, seed=1)
        assert ctrl.read_line(0, 0, 0).ok

        c = counters()
        assert c["catch_word_detected"] >= 2
        assert c["erasure_reconstruction"] == 1
        methods = {
            e.method for e in OBS.trace if e.kind == "erasure_reconstruction"
        }
        assert methods == {"rs_erasure"}

    def test_scrubber_emits_scrub_pass(self):
        dimm = XedDimm.build(seed=5)
        ctrl = XedController(dimm)
        scrubber = PatrolScrubber(ctrl, banks=1, rows=1, columns=4)
        report = scrubber.scrub_region()
        assert report.lines_scrubbed == 4

        c = counters()
        assert c["scrub.passes"] == 1
        assert c["scrub.lines"] == 4
        passes = [e for e in OBS.trace if e.kind == "scrub_pass"]
        assert passes and passes[0].lines_scrubbed == 4
        assert "scrub.region_s" in OBS.registry.snapshot()["timers"]


class TestCampaignTelemetry:
    def test_xed_campaign_events_and_counters(self):
        result = campaign.run_xed_campaign(trials=5)
        c = counters()
        assert c["campaign.trials"] == 5
        assert c["campaign.reads"] == result.total == 20
        kinds = OBS.trace.counts_by_kind()
        assert kinds["read_classified"] == 20
        assert kinds["trial_completed"] == 5
        # Outcome counters agree with the result's own tally.
        clean = c.get("campaign.outcome.clean", 0)
        corrected = c.get("campaign.outcome.corrected", 0)
        by_outcome = result.counts
        assert clean == by_outcome[campaign.Outcome.CLEAN]
        assert corrected == by_outcome[campaign.Outcome.CORRECTED]

    def test_per_granularity_counters_match_breakdown(self):
        from repro.dram.chip import FaultGranularity

        campaign.run_xed_campaign(
            trials=4, granularities=(FaultGranularity.ROW,)
        )
        c = counters()
        row_total = sum(
            v for k, v in c.items() if k.startswith("campaign.outcome.row.")
        )
        assert row_total == c["campaign.reads"]

    def test_monte_carlo_throughput_metrics(self):
        from repro.faultsim import MonteCarloConfig, XedScheme, simulate

        simulate(XedScheme(), MonteCarloConfig(num_systems=5_000, seed=11))
        c = counters()
        assert c["faultsim.systems"] == 5_000
        snap = OBS.registry.snapshot()
        assert snap["gauges"]["faultsim.systems_per_s"] > 0
        assert snap["timers"]["faultsim.simulate_s"]["count"] == 1


class TestPerfsimTelemetry:
    def test_engine_command_counts_and_timing(self):
        from repro.perfsim.runner import run_benchmark

        run = run_benchmark("gcc", "xed", instructions_per_core=2_000)
        c = counters()
        assert c["perfsim.reads"] == run.result.reads > 0
        assert c["perfsim.writes"] == run.result.writes
        snap = OBS.registry.snapshot()
        assert snap["gauges"]["perfsim.simulated_s"] == pytest.approx(
            run.result.exec_seconds
        )
        assert snap["gauges"]["perfsim.wall_per_simulated"] > 0
        assert snap["timers"]["perfsim.benchmark_s"]["count"] == 1


class TestCliObservability:
    def test_campaign_metrics_and_trace_out(self, tmp_path, capsys):
        from repro.cli import main

        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.jsonl"
        code = main([
            "campaign", "--kind", "xed", "--trials", "20",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
        ])
        assert code == 0

        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["catch_word_detected"] > 0
        assert metrics["counters"]["erasure_reconstruction"] > 0
        assert metrics["counters"]["campaign.trials"] == 20

        lines = [
            json.loads(line)
            for line in trace_path.read_text().splitlines() if line
        ]
        assert lines[0]["event"] == "trace_meta"
        kinds = {r["event"] for r in lines[1:]}
        assert "read_classified" in kinds
        assert "catch_word_detected" in kinds
        # The command leaves the global switch off for the next caller.
        assert OBS.enabled is False

    def test_flags_accepted_before_subcommand(self, tmp_path):
        from repro.cli import main

        metrics_path = tmp_path / "m.json"
        code = main([
            "--metrics-out", str(metrics_path), "campaign", "--trials", "2",
        ])
        assert code == 0
        assert metrics_path.exists()

    def test_without_flags_nothing_is_written(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["campaign", "--trials", "2"])
        assert code == 0
        assert OBS.enabled is False

    def test_summary_shows_granularity_breakdown(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--trials", "5"]) == 0
        out = capsys.readouterr().out
        assert "scenarios" in out
        assert "clean," in out.splitlines()[-1]
