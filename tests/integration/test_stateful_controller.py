"""Stateful (model-based) testing of the XED controller with hypothesis.

A RuleBasedStateMachine drives arbitrary interleavings of writes,
reads, scrubs and a single chip-fault injection against a reference
model (a plain dict of the last written lines).  The machine asserts
the paper's contract at every step: with at most one faulty chip, every
read returns exactly what was written, regardless of operation order.
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core import XedController
from repro.dram import XedDimm
from repro.dram.chip import FaultGranularity

ADDRESSES = [(0, 0, 0), (0, 0, 5), (0, 1, 3), (1, 0, 7), (2, 2, 2)]
lines = st.lists(
    st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=8, max_size=8
)


class XedMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 1000))
    def setup(self, seed):
        self.dimm = XedDimm.build(seed=seed)
        self.ctrl = XedController(self.dimm, seed=seed + 1)
        self.model = {}
        self.fault_injected = False
        self.rng = random.Random(seed)

    @rule(addr=st.sampled_from(ADDRESSES), line=lines)
    def write(self, addr, line):
        self.ctrl.write_line(*addr, line)
        self.model[addr] = line

    @rule(addr=st.sampled_from(ADDRESSES))
    def read(self, addr):
        if addr not in self.model:
            return
        result = self.ctrl.read_line(*addr)
        assert result.ok, f"DUE at {addr} with <=1 faulty chip"
        assert result.words == self.model[addr], f"corruption at {addr}"

    @rule(addr=st.sampled_from(ADDRESSES))
    def scrub(self, addr):
        if addr not in self.model:
            return
        result = self.ctrl.scrub_line(*addr)
        assert result.ok and result.words == self.model[addr]

    @precondition(lambda self: not self.fault_injected)
    @rule(
        chip=st.integers(0, 8),
        granularity=st.sampled_from(
            [FaultGranularity.WORD, FaultGranularity.ROW,
             FaultGranularity.BANK, FaultGranularity.CHIP]
        ),
        permanent=st.booleans(),
        anchor=st.sampled_from(ADDRESSES),
    )
    def inject_single_chip_fault(self, chip, granularity, permanent, anchor):
        bank, row, column = anchor
        self.dimm.inject_chip_failure(
            chip=chip, granularity=granularity, permanent=permanent,
            bank=bank, row=row, column=column,
            seed=self.rng.randrange(1 << 16),
        )
        self.fault_injected = True

    @invariant()
    def xed_enable_stays_on(self):
        if hasattr(self, "dimm"):
            assert all(chip.regs.xed_enable for chip in self.dimm.chips)

    @invariant()
    def due_counter_stays_zero(self):
        if hasattr(self, "ctrl"):
            assert self.ctrl.stats["dues"] == 0


TestXedMachine = XedMachine.TestCase
TestXedMachine.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
