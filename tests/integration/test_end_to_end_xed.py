"""End-to-end fault-injection campaign on the behavioural XED stack.

These tests sweep randomized fault scenarios through the full chip ->
DIMM -> controller path and assert the paper's central functional
claim: any *single* faulty chip -- whatever the granularity, wherever
the access -- never corrupts returned data.
"""

import random

import pytest

from repro.core import ReadStatus, XedController
from repro.dram import XedDimm
from repro.dram.chip import FaultGranularity, InjectedFault

GRANULARITIES = [
    FaultGranularity.BIT,
    FaultGranularity.WORD,
    FaultGranularity.COLUMN,
    FaultGranularity.ROW,
    FaultGranularity.BANK,
    FaultGranularity.CHIP,
]


class TestSingleChipCampaign:
    @pytest.mark.parametrize("trial", range(30))
    def test_random_single_chip_fault_never_corrupts(self, trial):
        rng = random.Random(1000 + trial)
        dimm = XedDimm.build(seed=trial)
        ctrl = XedController(dimm, seed=trial * 3 + 1)

        bank = rng.randrange(8)
        row = rng.randrange(200)
        columns = rng.sample(range(128), 6)
        lines = {}
        for col in columns:
            line = [rng.getrandbits(64) for _ in range(8)]
            lines[col] = line
            ctrl.write_line(bank, row, col, line)

        chip = rng.randrange(9)
        granularity = rng.choice(GRANULARITIES)
        dimm.inject_chip_failure(
            chip=chip,
            granularity=granularity,
            permanent=True,
            bank=bank,
            row=row,
            column=columns[0],
            bit=rng.randrange(64),
            seed=trial,
        )

        for col in columns:
            result = ctrl.read_line(bank, row, col)
            assert result.ok, (
                f"trial {trial}: {granularity} in chip {chip} -> DUE"
            )
            assert result.words == lines[col], (
                f"trial {trial}: {granularity} in chip {chip} corrupted data"
            )

    @pytest.mark.parametrize("trial", range(10))
    def test_transient_faults_cleared_by_scrub(self, trial):
        rng = random.Random(2000 + trial)
        dimm = XedDimm.build(seed=trial + 50)
        ctrl = XedController(dimm, seed=trial)
        line = [rng.getrandbits(64) for _ in range(8)]
        ctrl.write_line(0, 3, 17, line)
        dimm.inject_chip_failure(
            chip=rng.randrange(9),
            granularity=rng.choice(
                [FaultGranularity.WORD, FaultGranularity.ROW]
            ),
            permanent=False,
            bank=0,
            row=3,
            column=17,
            seed=trial,
        )
        scrubbed = ctrl.scrub_line(0, 3, 17)
        assert scrubbed.words == line
        assert ctrl.read_line(0, 3, 17).status is ReadStatus.CLEAN


class TestScalingPlusRuntime:
    def test_scaling_never_corrupts_any_line(self):
        dimm = XedDimm.build(seed=7, scaling_ber=1e-3)
        ctrl = XedController(dimm, seed=8)
        rng = random.Random(3)
        for col in range(128):
            line = [rng.getrandbits(64) for _ in range(8)]
            ctrl.write_line(0, 0, col, line)
            result = ctrl.read_line(0, 0, col)
            assert result.ok and result.words == line

    def test_chip_failure_with_scaling_background(self):
        dimm = XedDimm.build(seed=11, scaling_ber=1e-3)
        ctrl = XedController(dimm, seed=12)
        rng = random.Random(4)
        lines = {}
        for col in range(128):
            lines[col] = [rng.getrandbits(64) for _ in range(8)]
            ctrl.write_line(2, 9, col, lines[col])
        dimm.inject_chip_failure(
            chip=6, granularity=FaultGranularity.BANK, bank=2
        )
        ok = sum(
            ctrl.read_line(2, 9, col).words == lines[col]
            for col in range(128)
        )
        assert ok == 128


class TestMultiChipLimit:
    def test_two_simultaneous_chip_failures_are_due_not_sdc(self):
        """XED's documented limit: two faulty chips cannot be rebuilt
        from one parity chip -- but the failure must be *detected*."""
        dimm = XedDimm.build(seed=31)
        ctrl = XedController(dimm, seed=32)
        line = [0xFACE_0000_0000_0000 + i for i in range(8)]
        ctrl.write_line(0, 0, 0, line)
        dimm.inject_chip_failure(chip=1, seed=1)
        dimm.inject_chip_failure(chip=5, seed=2)
        result = ctrl.read_line(0, 0, 0)
        if result.ok:
            # If the controller claims success it must not lie.
            assert result.words == line
        else:
            assert result.status is ReadStatus.DUE

    def test_stats_accumulate_over_campaign(self):
        dimm = XedDimm.build(seed=41)
        ctrl = XedController(dimm, seed=42)
        for col in range(16):
            ctrl.write_line(0, 0, col, [col] * 8)
        dimm.inject_chip_failure(chip=2)
        for col in range(16):
            ctrl.read_line(0, 0, col)
        assert ctrl.stats["reads"] == 16
        assert ctrl.stats["erasure_corrections"] == 16
        assert ctrl.stats["dues"] == 0
