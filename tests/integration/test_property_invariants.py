"""Property-based whole-stack invariants (hypothesis).

These properties hold for *any* data, any addresses, any single-chip
fault -- the algebraic heart of the paper, checked adversarially:

1. read-after-write returns the written line (no faults);
2. a single faulty chip never changes what a read returns;
3. parity reconstruction is self-consistent for any transfer vector;
4. RS erasure decoding inverts any <=2-chip corruption at known spots;
5. controller statistics never go backwards.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import XedController
from repro.core.parity import parity_residue, reconstruct_line, xor_parity
from repro.dram import XedDimm
from repro.dram.chip import FaultGranularity
from repro.ecc import ReedSolomonCode

words8 = st.lists(
    st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=8, max_size=8
)
small_addr = st.tuples(
    st.integers(0, 7),      # bank
    st.integers(0, 255),    # row
    st.integers(0, 127),    # column
)


class TestReadAfterWrite:
    @given(line=words8, addr=small_addr, seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_clean_roundtrip(self, line, addr, seed):
        dimm = XedDimm.build(seed=seed)
        ctrl = XedController(dimm, seed=seed + 1)
        ctrl.write_line(*addr, line)
        result = ctrl.read_line(*addr)
        assert result.words == line

    @given(
        line=words8,
        addr=small_addr,
        chip=st.integers(0, 8),
        granularity=st.sampled_from(
            [FaultGranularity.WORD, FaultGranularity.ROW,
             FaultGranularity.BANK, FaultGranularity.CHIP]
        ),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_fault_transparent(self, line, addr, chip, granularity, seed):
        dimm = XedDimm.build(seed=seed)
        ctrl = XedController(dimm, seed=seed + 1)
        ctrl.write_line(*addr, line)
        bank, row, column = addr
        dimm.inject_chip_failure(
            chip=chip, granularity=granularity,
            bank=bank, row=row, column=column, seed=seed,
        )
        result = ctrl.read_line(*addr)
        assert result.ok
        assert result.words == line


class TestParityAlgebra:
    @given(words=words8, chip=st.integers(0, 8),
           garbage=st.integers(0, (1 << 64) - 1))
    @settings(max_examples=200)
    def test_reconstruction_inverts_any_corruption(self, words, chip, garbage):
        transfers = words + [xor_parity(words)]
        original = transfers[chip]
        transfers[chip] = garbage
        fixed = reconstruct_line(transfers, chip)
        assert fixed[chip] == original
        assert parity_residue(fixed) == 0

    @given(words=words8)
    def test_residue_zero_iff_consistent(self, words):
        transfers = words + [xor_parity(words)]
        assert parity_residue(transfers) == 0


class TestReedSolomonAlgebra:
    @given(
        data=st.lists(st.integers(0, 255), min_size=16, max_size=16),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_two_known_corruptions_always_invertible(self, data, seed):
        rng = random.Random(seed)
        rs = ReedSolomonCode.chipkill(16)
        cw = rs.encode(data)
        positions = rng.sample(range(18), 2)
        bad = list(cw)
        for pos in positions:
            bad[pos] = rng.randrange(256)  # arbitrary replacement
        result = rs.decode(bad, erasures=positions)
        assert result.data == data


class TestStatsMonotonic:
    @given(ops=st.lists(st.tuples(small_addr, words8), min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_counters_only_grow(self, ops):
        dimm = XedDimm.build(seed=3)
        ctrl = XedController(dimm, seed=4)
        previous = dict(ctrl.stats)
        for addr, line in ops:
            ctrl.write_line(*addr, line)
            ctrl.read_line(*addr)
            for key, value in ctrl.stats.items():
                assert value >= previous[key]
            previous = dict(ctrl.stats)
