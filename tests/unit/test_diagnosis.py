"""Unit tests for inter-/intra-line diagnosis and the FCT (Section VI)."""

import pytest

from repro.core.controller import XedController
from repro.core.diagnosis import (
    FaultyRowChipTracker,
    inter_line_diagnosis,
    intra_line_diagnosis,
)
from repro.dram import XedDimm
from repro.dram.chip import FaultGranularity


def make_system(seed=1, scaling=0.0):
    dimm = XedDimm.build(seed=seed, scaling_ber=scaling)
    ctrl = XedController(dimm, seed=seed + 100)
    return dimm, ctrl


def fill_row(ctrl, bank, row, columns=128):
    for col in range(columns):
        ctrl.write_line(bank, row, col, [col * 8 + i for i in range(8)])


class TestInterLineDiagnosis:
    def test_row_failure_convicted(self):
        dimm, ctrl = make_system(1)
        fill_row(ctrl, 0, 10)
        dimm.inject_chip_failure(
            chip=6, granularity=FaultGranularity.ROW, bank=0, row=10
        )
        result = inter_line_diagnosis(dimm, ctrl.catch_words, 0, 10)
        assert result.faulty_chip == 6
        assert result.evidence[6] >= 12  # way past the 10% threshold

    def test_bank_failure_convicted(self):
        dimm, ctrl = make_system(2)
        fill_row(ctrl, 3, 55)
        dimm.inject_chip_failure(
            chip=2, granularity=FaultGranularity.BANK, bank=3
        )
        result = inter_line_diagnosis(dimm, ctrl.catch_words, 3, 55)
        assert result.faulty_chip == 2

    def test_parity_chip_convictable(self):
        dimm, ctrl = make_system(3)
        fill_row(ctrl, 0, 1)
        dimm.inject_chip_failure(
            chip=8, granularity=FaultGranularity.ROW, bank=0, row=1
        )
        result = inter_line_diagnosis(dimm, ctrl.catch_words, 0, 1)
        assert result.faulty_chip == 8

    def test_healthy_row_convicts_nobody(self):
        dimm, ctrl = make_system(4)
        fill_row(ctrl, 0, 0)
        result = inter_line_diagnosis(dimm, ctrl.catch_words, 0, 0)
        assert result.faulty_chip is None
        assert all(v == 0 for v in result.evidence.values())

    def test_single_word_fault_below_threshold(self):
        """One bad line out of 128 is 0.8%: far below the 10% threshold,
        so inter-line diagnosis (correctly) refuses to convict."""
        dimm, ctrl = make_system(5)
        fill_row(ctrl, 0, 7)
        dimm.inject_chip_failure(
            chip=4, granularity=FaultGranularity.WORD,
            bank=0, row=7, column=3,
        )
        result = inter_line_diagnosis(dimm, ctrl.catch_words, 0, 7)
        assert result.faulty_chip is None

    def test_scaling_noise_does_not_convict(self):
        """Weak cells at the paper's 1e-4 rate sprinkle catch-words
        across chips but no chip should cross the 10% threshold (the
        Section VIII argument; at 1e-3 the threshold *can* be crossed,
        which is why the paper quotes the SDC bound at 1e-4)."""
        dimm, ctrl = make_system(6, scaling=1e-4)
        fill_row(ctrl, 0, 2)
        result = inter_line_diagnosis(dimm, ctrl.catch_words, 0, 2)
        assert result.faulty_chip is None

    def test_threshold_parameter(self):
        dimm, ctrl = make_system(7)
        fill_row(ctrl, 0, 9)
        dimm.inject_chip_failure(
            chip=1, granularity=FaultGranularity.WORD, bank=0, row=9, column=0
        )
        # With an absurdly low threshold even one line convicts.
        result = inter_line_diagnosis(
            dimm, ctrl.catch_words, 0, 9, threshold=0.0
        )
        assert result.faulty_chip == 1


class TestFCT:
    def test_records_and_looks_up(self):
        fct = FaultyRowChipTracker(capacity=4)
        fct.record(0, 100, 5)
        assert fct.lookup(0, 100) == 5
        assert fct.lookup(0, 101) is None

    def test_capacity_evicts_oldest(self):
        fct = FaultyRowChipTracker(capacity=2)
        fct.record(0, 1, 1)
        fct.record(0, 2, 2)
        fct.record(0, 3, 3)
        assert len(fct.entries) == 2
        assert fct.lookup(0, 1) is None or fct.dead_chip is not None

    def test_unanimous_full_tracker_marks_chip_dead(self):
        fct = FaultyRowChipTracker(capacity=4)
        for row in range(4):
            fct.record(1, row, 7)
        assert fct.dead_chip == 7
        # Dead chip answers every lookup (all accesses reconstructed).
        assert fct.lookup(5, 99999) == 7

    def test_divided_tracker_does_not_kill(self):
        fct = FaultyRowChipTracker(capacity=4)
        fct.record(0, 0, 1)
        fct.record(0, 1, 1)
        fct.record(0, 2, 2)
        fct.record(0, 3, 1)
        assert fct.dead_chip is None

    def test_entry_cost_36_bits(self):
        fct = FaultyRowChipTracker(capacity=8)
        assert fct.ENTRY_BITS == 36
        assert fct.storage_bits == 8 * 36


class TestIntraLineDiagnosis:
    def test_finds_permanent_word_fault(self):
        dimm, ctrl = make_system(8)
        ctrl.write_line(0, 4, 20, list(range(8)))
        dimm.inject_chip_failure(
            chip=3, granularity=FaultGranularity.WORD, permanent=True,
            bank=0, row=4, column=20,
        )
        result = intra_line_diagnosis(dimm, 0, 4, 20)
        assert result.faulty_chip == 3

    def test_finds_permanent_bit_beyond_on_die(self):
        dimm, ctrl = make_system(9)
        ctrl.write_line(0, 4, 21, list(range(8)))
        dimm.inject_chip_failure(
            chip=5, granularity=FaultGranularity.WORD, permanent=True,
            bank=0, row=4, column=21, severity=6,
        )
        assert intra_line_diagnosis(dimm, 0, 4, 21).faulty_chip == 5

    def test_cannot_find_transient_fault(self):
        """Table IV's DUE tail: transient faults vanish under rewrite."""
        dimm, ctrl = make_system(10)
        ctrl.write_line(0, 4, 22, list(range(8)))
        dimm.inject_chip_failure(
            chip=2, granularity=FaultGranularity.WORD, permanent=False,
            bank=0, row=4, column=22,
        )
        assert intra_line_diagnosis(dimm, 0, 4, 22).faulty_chip is None

    def test_healthy_line_no_conviction(self):
        dimm, ctrl = make_system(11)
        ctrl.write_line(0, 0, 0, list(range(8)))
        assert intra_line_diagnosis(dimm, 0, 0, 0).faulty_chip is None

    def test_restores_xed_enable_and_content(self):
        dimm, ctrl = make_system(12)
        line = [11 * i for i in range(8)]
        ctrl.write_line(2, 6, 30, line)
        intra_line_diagnosis(dimm, 2, 6, 30)
        assert all(chip.regs.xed_enable for chip in dimm.chips)
        after = ctrl.read_line(2, 6, 30)
        assert after.words == line

    def test_two_faulty_chips_refused(self):
        dimm, ctrl = make_system(13)
        ctrl.write_line(0, 0, 1, list(range(8)))
        for chip in (1, 6):
            dimm.inject_chip_failure(
                chip=chip, granularity=FaultGranularity.WORD, permanent=True,
                bank=0, row=0, column=1, severity=5,
            )
        assert intra_line_diagnosis(dimm, 0, 0, 1).faulty_chip is None
