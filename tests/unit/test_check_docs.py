"""Unit tests for the docs reference lint (``tools/check_docs.py``).

The lint is CI's guarantee that every ``--flag`` and ``repro.*``
dotted path mentioned in the markdown docs exists in the code; these
tests pin the extraction regexes, the argparse/import resolution, and
the exit-code contract, including the wildcard form
``repro.perfsim.configs.EXTRA_*``.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_docs.py"
_spec = importlib.util.spec_from_file_location("check_docs", _TOOL)
check_docs = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_docs", check_docs)
_spec.loader.exec_module(check_docs)


@pytest.fixture(scope="module")
def cli_flags():
    return check_docs.collect_cli_flags()


@pytest.fixture(scope="module")
def tool_flags():
    return check_docs.collect_tool_flags()


class TestFlagCollection:
    def test_cli_tree_walk_reaches_subcommands(self, cli_flags):
        # Top-level, reliability-subcommand, sweep-subcommand and
        # obs-sub-subcommand flags all come from one recursive walk.
        for flag in (
            "--log-level",
            "--faultsim-backend",
            "--fit-scales",
            "--metrics",
        ):
            assert flag in cli_flags

    def test_tools_scrape_finds_bench_snapshot_flags(self, tool_flags):
        assert "--tolerance" in tool_flags
        assert "--include-wall" in tool_flags

    def test_unknown_flag_not_collected(self, cli_flags, tool_flags):
        assert "--definitely-not-a-flag" not in cli_flags | tool_flags


class TestDottedResolution:
    def test_module_path(self):
        assert check_docs.resolve_dotted("repro.faultsim.markov")

    def test_attribute_path(self):
        assert check_docs.resolve_dotted("repro.faultsim.markov.solve")

    def test_missing_attribute(self):
        assert not check_docs.resolve_dotted("repro.faultsim.markov.absent")

    def test_missing_module(self):
        assert not check_docs.resolve_dotted("repro.no_such_module")

    def test_wildcard_prefix(self):
        assert check_docs.resolve_dotted(
            "repro.perfsim.configs.EXTRA_", wildcard=True
        )

    def test_wildcard_without_match(self):
        assert not check_docs.resolve_dotted(
            "repro.perfsim.configs.ZZZ_", wildcard=True
        )


class TestCheckFile:
    def _lint(self, tmp_path, text, cli_flags, tool_flags):
        doc = tmp_path / "doc.md"
        doc.write_text(text, encoding="utf-8")
        return check_docs.check_file(doc, cli_flags, tool_flags)

    def test_clean_doc(self, tmp_path, cli_flags, tool_flags):
        problems = self._lint(
            tmp_path,
            "Run `repro sweep --fit-scales 1 4` or call "
            "`repro.faultsim.markov.sweep` directly.\n",
            cli_flags,
            tool_flags,
        )
        assert problems == []

    def test_stale_flag_reported_with_line(
        self, tmp_path, cli_flags, tool_flags
    ):
        problems = self._lint(
            tmp_path, "ok\npass `--bogus-flag` here\n", cli_flags, tool_flags
        )
        assert len(problems) == 1
        assert ":2:" in problems[0] and "--bogus-flag" in problems[0]

    def test_stale_dotted_path_reported(
        self, tmp_path, cli_flags, tool_flags
    ):
        problems = self._lint(
            tmp_path, "see repro.faultsim.gone()\n", cli_flags, tool_flags
        )
        assert len(problems) == 1
        assert "repro.faultsim.gone" in problems[0]

    def test_wildcard_in_doc_text(self, tmp_path, cli_flags, tool_flags):
        problems = self._lint(
            tmp_path,
            "constants repro.perfsim.configs.EXTRA_* are generated\n",
            cli_flags,
            tool_flags,
        )
        assert problems == []

    def test_markdown_rule_not_a_flag(self, tmp_path, cli_flags, tool_flags):
        # A horizontal rule / em-dash run must not parse as a flag.
        problems = self._lint(tmp_path, "---\ntext --- more\n", cli_flags, tool_flags)
        assert problems == []

    def test_external_flags_allowlisted(self, tmp_path, cli_flags, tool_flags):
        problems = self._lint(
            tmp_path,
            "pytest benchmarks --benchmark-only --benchmark-json out.json\n",
            cli_flags,
            tool_flags,
        )
        assert problems == []


class TestMainExitCodes:
    def test_clean_exit_zero(self, tmp_path, capsys):
        doc = tmp_path / "ok.md"
        doc.write_text("use `--systems` and repro.faultsim\n", encoding="utf-8")
        assert check_docs.main([str(doc)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        doc = tmp_path / "bad.md"
        doc.write_text("use `--not-real`\n", encoding="utf-8")
        assert check_docs.main([str(doc)]) == 1
        captured = capsys.readouterr()
        assert "--not-real" in captured.out
        assert "stale reference" in captured.err

    def test_missing_doc_exit_two(self, tmp_path, capsys):
        assert check_docs.main([str(tmp_path / "absent.md")]) == 2
        assert "no such doc" in capsys.readouterr().err

    def test_repo_docs_are_clean(self):
        # The committed documentation surface itself must lint clean --
        # this is the same invocation CI runs.
        assert check_docs.main([]) == 0
