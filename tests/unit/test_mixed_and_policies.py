"""Unit tests for multiprogrammed mixes and scheduler policies."""

import pytest

from repro.perfsim.configs import SCHEME_CONFIGS
from repro.perfsim.engine import simulate_system
from repro.perfsim.timing import SystemTiming
from repro.perfsim.workloads import workload_by_name

MIX8 = [
    workload_by_name(n)
    for n in ("libquantum", "mcf", "gcc", "stream", "lbm", "omnetpp",
              "wrf", "milc")
]


class TestMixedWorkloads:
    def test_mix_runs_and_names_itself(self):
        result = simulate_system(
            MIX8, SCHEME_CONFIGS["ecc_dimm"], instructions_per_core=8_000
        )
        assert result.workload.startswith("mix(")
        assert "libquantum" in result.workload
        assert result.exec_bus_cycles > 0

    def test_mix_requires_num_cores_entries(self):
        with pytest.raises(ValueError):
            simulate_system(
                MIX8[:3], SCHEME_CONFIGS["ecc_dimm"],
                instructions_per_core=1_000,
            )

    def test_mix_bounded_by_its_members(self):
        """A mix finishes no earlier than 8x its lightest member's
        per-core work and is dominated by its heaviest member."""
        mix = simulate_system(
            MIX8, SCHEME_CONFIGS["ecc_dimm"], instructions_per_core=8_000
        )
        heavy = simulate_system(
            workload_by_name("libquantum"), SCHEME_CONFIGS["ecc_dimm"],
            instructions_per_core=8_000,
        )
        light = simulate_system(
            workload_by_name("gcc"), SCHEME_CONFIGS["ecc_dimm"],
            instructions_per_core=8_000,
        )
        assert light.exec_bus_cycles < mix.exec_bus_cycles < (
            heavy.exec_bus_cycles * 1.2
        )

    def test_mix_sees_chipkill_overhead_too(self):
        base = simulate_system(
            MIX8, SCHEME_CONFIGS["ecc_dimm"], instructions_per_core=8_000
        )
        ck = simulate_system(
            MIX8, SCHEME_CONFIGS["chipkill"], instructions_per_core=8_000
        )
        assert ck.exec_bus_cycles > base.exec_bus_cycles


class TestSchedulerPolicies:
    def test_frfcfs_beats_fcfs_on_row_local_traffic(self):
        w = workload_by_name("libquantum")
        frfcfs = simulate_system(
            w, SCHEME_CONFIGS["ecc_dimm"],
            SystemTiming(scheduler="frfcfs"), instructions_per_core=10_000,
        )
        fcfs = simulate_system(
            w, SCHEME_CONFIGS["ecc_dimm"],
            SystemTiming(scheduler="fcfs"), instructions_per_core=10_000,
        )
        assert frfcfs.exec_bus_cycles <= fcfs.exec_bus_cycles
        assert (
            frfcfs.channel_stats.row_hit_rate
            >= fcfs.channel_stats.row_hit_rate
        )

    def test_fcfs_still_correct(self):
        w = workload_by_name("mcf")
        result = simulate_system(
            w, SCHEME_CONFIGS["ecc_dimm"],
            SystemTiming(scheduler="fcfs"), instructions_per_core=5_000,
        )
        assert result.reads > 0
        assert len(result.core_finish_times) == 8
