"""Unit tests for DRAM geometry and address arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.geometry import ChipGeometry, DimmGeometry, LineAddress


class TestChipGeometry:
    def test_table_v_defaults(self):
        g = ChipGeometry()
        assert g.banks == 8
        assert g.rows_per_bank == 32 * 1024
        assert g.columns_per_row == 128
        assert g.device_width == 8

    def test_2gb_capacity(self):
        # 8 banks x 32K rows x 128 columns x 64 bits = 2 Gbit.
        assert ChipGeometry().capacity_bits == 2 * (1 << 30)

    def test_x4_bits_per_access(self):
        assert ChipGeometry(device_width=4).bits_per_access == 32
        assert ChipGeometry(device_width=8).bits_per_access == 64

    def test_word_index_is_dense_and_unique(self):
        g = ChipGeometry(banks=2, rows_per_bank=4, columns_per_row=3)
        seen = set()
        for b in range(2):
            for r in range(4):
                for c in range(3):
                    seen.add(g.word_index(b, r, c))
        assert seen == set(range(g.total_words))

    def test_validate_bounds(self):
        g = ChipGeometry()
        with pytest.raises(IndexError):
            g.validate(8, 0, 0)
        with pytest.raises(IndexError):
            g.validate(0, 32 * 1024, 0)
        with pytest.raises(IndexError):
            g.validate(0, 0, 128)


class TestDimmGeometry:
    def test_canned_configs(self):
        assert DimmGeometry.ecc_dimm_x8().chips_per_rank == 9
        assert DimmGeometry.non_ecc_dimm_x8().chips_per_rank == 8
        assert DimmGeometry.chipkill_x4().chips_per_rank == 18
        assert DimmGeometry.chipkill_x4().chip.device_width == 4
        assert DimmGeometry.double_chipkill_x4().chips_per_rank == 36

    def test_line_bytes_64(self):
        assert DimmGeometry.ecc_dimm_x8().line_bytes == 64
        assert DimmGeometry.chipkill_x4().line_bytes == 64

    def test_total_chips(self):
        # Table V: 4 channels x 2 ranks x 9 chips = 72.
        assert DimmGeometry.ecc_dimm_x8().total_chips == 72

    def test_capacity_4gb_per_dimm(self):
        g = DimmGeometry.ecc_dimm_x8()
        per_dimm = g.data_capacity_bytes // g.channels
        assert per_dimm == 4 * (1 << 30)  # dual-rank 4GB DIMM (Table V)

    @given(line=st.integers(min_value=0))
    @settings(max_examples=300)
    def test_decompose_compose_roundtrip(self, line):
        g = DimmGeometry.ecc_dimm_x8()
        capacity_lines = (
            g.channels * g.ranks_per_channel * g.lines_per_rank
        )
        line %= capacity_lines
        addr = g.decompose(line)
        assert g.compose(addr) == line

    def test_decompose_fields_in_range(self):
        g = DimmGeometry.ecc_dimm_x8()
        addr = g.decompose(123456789)
        assert 0 <= addr.channel < 4
        assert 0 <= addr.rank < 2
        assert 0 <= addr.bank < 8
        assert 0 <= addr.row < 32 * 1024
        assert 0 <= addr.column < 128

    def test_consecutive_lines_interleave_channels(self):
        g = DimmGeometry.ecc_dimm_x8()
        channels = [g.decompose(i).channel for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_out_of_range(self):
        g = DimmGeometry.ecc_dimm_x8()
        with pytest.raises(IndexError):
            g.decompose(-1)
        with pytest.raises(IndexError):
            g.decompose(g.channels * g.ranks_per_channel * g.lines_per_rank)

    def test_line_address_is_value_type(self):
        a = LineAddress(0, 1, 2, 3, 4)
        b = LineAddress(0, 1, 2, 3, 4)
        assert a == b and hash(a) == hash(b)
