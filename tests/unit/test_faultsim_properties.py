"""Hypothesis property suite for the fault-simulation schemes.

Four families of properties, each one a structural invariant of the
XED paper's failure model rather than a point check:

* Chipkill (any single-symbol corrector) never fails -- and in
  particular never SDCs -- when every fault sits in one chip;
* XED corrects any *detected* single-chip error, whatever its
  granularity (only the undetectable transient-word tail can kill);
* failure is monotone: adding faults to a system never un-fails it and
  never delays its first failure (for the deterministic schemes);
* ``ReliabilityResult.merge`` is associative, so a sharded run can be
  reduced in any grouping and still produce the identical payload.

A final property replays hypothesis-chosen small populations through
both adjudication backends via the differential harness.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faultsim.differential import replay_shard
from repro.faultsim.fault import AddressRange, ChipFault, FaultSpace
from repro.faultsim.fault_models import FailureMode, FitTable
from repro.faultsim.schemes import (
    ChipkillScheme,
    DoubleChipkillScheme,
    FailureKind,
    NonEccScheme,
    XedChipkillScheme,
    XedScheme,
)
from repro.faultsim.simulator import MonteCarloConfig, ReliabilityResult
from repro.faultsim.vectorized import system_rng

SPACE = FaultSpace()
HOURS = 7 * 24 * 365

# Granularities a scheme can be handed directly (MULTI_RANK arrives
# pre-cloned from the sampler, so evaluate() never sees it raw).
MODES = [
    FailureMode.SINGLE_BIT,
    FailureMode.SINGLE_WORD,
    FailureMode.SINGLE_COLUMN,
    FailureMode.SINGLE_ROW,
    FailureMode.SINGLE_BANK,
    FailureMode.MULTI_BANK,
]

# Deterministic schemes: evaluate() consumes no RNG draws, so failure
# outcomes are pure functions of the fault set.  (XED is deterministic
# with the undetectable-miss tail switched off.)
DETERMINISTIC_SCHEMES = [
    NonEccScheme(),
    ChipkillScheme(),
    DoubleChipkillScheme(),
    XedScheme(on_die_miss_probability=0.0),
]


@st.composite
def chip_faults(draw, chip=None, visible=True):
    """One ChipFault with mode-consistent wildcard, optionally pinned."""
    mode = draw(st.sampled_from(MODES))
    wildcard = SPACE.wildcard_for(mode)
    time = draw(
        st.floats(min_value=0.0, max_value=HOURS, allow_nan=False)
    )
    permanent = draw(st.booleans())
    end = (
        float("inf")
        if permanent
        else time
        + draw(st.floats(min_value=0.0, max_value=HOURS, allow_nan=False))
    )
    return ChipFault(
        channel=draw(st.integers(0, 3)),
        rank=draw(st.integers(0, 1)),
        chip=chip if chip is not None else draw(st.integers(0, 8)),
        mode=mode,
        permanent=permanent,
        time_hours=time,
        addr=AddressRange(
            draw(st.integers(0, SPACE.full_mask)), wildcard
        ),
        on_die_correctable=not visible,
        end_hours=end,
    )


def fault_lists(min_size=1, max_size=6, **kwargs):
    """Lists of visible faults for direct evaluate() calls."""
    return st.lists(
        chip_faults(**kwargs), min_size=min_size, max_size=max_size
    )


def rng():
    """A fresh per-system RNG (the exact kind the simulator hands out)."""
    return system_rng(2016, 0)


class TestSingleChipImmunity:
    @given(faults=fault_lists(max_size=5, chip=3))
    @settings(max_examples=120)
    def test_chipkill_survives_any_single_chip_damage(self, faults):
        """Chipkill corrects one symbol: same-chip faults never fail."""
        assert ChipkillScheme().evaluate(faults, rng()) is None

    @given(faults=fault_lists(max_size=5, chip=3))
    @settings(max_examples=60)
    def test_double_chipkill_survives_single_chip_damage(self, faults):
        assert DoubleChipkillScheme().evaluate(faults, rng()) is None

    @given(faults=fault_lists(max_size=8))
    @settings(max_examples=120)
    def test_chipkill_never_sdcs(self, faults):
        """Chipkill's only failure mechanism is detected (DUE)."""
        failure = ChipkillScheme().evaluate(faults, rng())
        assert failure is None or failure.kind is FailureKind.DUE

    @given(faults=fault_lists(max_size=5, chip=3))
    @settings(max_examples=60)
    def test_xed_chipkill_survives_single_chip_damage(self, faults):
        assert XedChipkillScheme().evaluate(faults, rng()) is None


class TestXedErasureCorrection:
    @given(fault=chip_faults())
    @settings(max_examples=120)
    def test_xed_corrects_any_detected_single_fault(self, fault):
        """On-die detection makes one faulty chip a pure erasure."""
        scheme = XedScheme(on_die_miss_probability=0.0)
        assert scheme.evaluate([fault], rng()) is None

    @given(fault=chip_faults())
    @settings(max_examples=120)
    def test_xed_corrects_detected_faults_at_default_miss_rate(
        self, fault
    ):
        """Only *transient word* faults can slip past on-die ECC; any
        other single visible fault is corrected even at the paper's
        0.8% miss probability."""
        if fault.mode is FailureMode.SINGLE_WORD and not fault.permanent:
            return  # the undetectable tail -- exercised elsewhere
        failure = XedScheme().evaluate([fault], rng())
        assert failure is None

    @given(fault=chip_faults(visible=False))
    @settings(max_examples=40)
    def test_on_die_correctable_faults_are_invisible(self, fault):
        for scheme in DETERMINISTIC_SCHEMES:
            assert scheme.evaluate([fault], rng()) is None


class TestFailureMonotonicity:
    @given(
        faults=fault_lists(min_size=2, max_size=6),
        extra=chip_faults(),
    )
    @settings(max_examples=120)
    def test_adding_a_fault_never_helps(self, faults, extra):
        """For every deterministic scheme: superset failure exists and
        is no later than the subset failure."""
        for scheme in DETERMINISTIC_SCHEMES:
            base = scheme.evaluate(faults, rng())
            more = scheme.evaluate(faults + [extra], rng())
            if base is not None:
                assert more is not None
                assert more.time_hours <= base.time_hours

    @given(scale=st.floats(min_value=1.0, max_value=64.0))
    @settings(max_examples=40)
    def test_fit_scaling_is_monotone_in_rates(self, scale):
        """scaled() multiplies every mode rate, so total FIT grows."""
        base = FitTable()
        scaled = base.scaled(scale)
        for mode in FailureMode:
            assert (
                scaled.rates[mode].total >= base.rates[mode].total
            )
        assert scaled.total_fit >= base.total_fit


def shard_results(max_failures=5):
    """Strategy for compatible per-shard ReliabilityResults."""
    failure = st.tuples(
        st.floats(min_value=0.0, max_value=HOURS, allow_nan=False),
        st.sampled_from([FailureKind.DUE, FailureKind.SDC]),
    )
    def build(failures):
        return ReliabilityResult(
            scheme_name="prop",
            num_systems=1000,
            years=7.0,
            failure_times_hours=[t for t, _ in failures],
            kinds=[k for _, k in failures],
        )
    return st.lists(failure, max_size=max_failures).map(build)


class TestMergeAssociativity:
    @given(
        a=shard_results(), b=shard_results(), c=shard_results()
    )
    @settings(max_examples=120)
    def test_merge_is_associative(self, a, b, c):
        merge = ReliabilityResult.merge
        left = merge([merge([a, b]), c])
        right = merge([a, merge([b, c])])
        flat = merge([a, b, c])
        payloads = {
            json.dumps(r.to_payload(), sort_keys=True)
            for r in (left, right, flat)
        }
        assert len(payloads) == 1
        assert left.num_systems == a.num_systems * 3
        assert (left.due_count, left.sdc_count) == (
            flat.due_count,
            flat.sdc_count,
        )


class TestDifferentialProperty:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        scale=st.floats(min_value=10.0, max_value=60.0),
        scheme=st.sampled_from(
            [XedScheme, ChipkillScheme, XedChipkillScheme]
        ),
    )
    @settings(max_examples=12, deadline=None)
    def test_backends_agree_on_arbitrary_configs(
        self, seed, scale, scheme
    ):
        """Scalar and vectorized adjudication stay bit-identical for
        hypothesis-chosen seeds and FIT scalings."""
        replay_shard(
            scheme(),
            MonteCarloConfig(
                num_systems=400,
                seed=seed,
                fit=FitTable().scaled(scale),
            ),
        )
