"""Unit tests for the scaling-fault analytics (Table III, Section VIII)."""

import math

import pytest

from repro.faultsim.scaling import ScalingFaultModel


class TestWordProbabilities:
    def test_p_word_faulty_approximation(self):
        model = ScalingFaultModel(bit_error_rate=1e-4)
        assert model.p_word_faulty == pytest.approx(64e-4, rel=0.01)

    def test_zero_rate(self):
        model = ScalingFaultModel(bit_error_rate=0.0)
        assert model.p_word_faulty == 0.0
        assert model.p_multiple_catch_words() == 0.0
        assert model.serial_mode_interval_accesses() == math.inf

    def test_promotion_probability_slightly_below_word(self):
        model = ScalingFaultModel(bit_error_rate=1e-4)
        assert 0 < model.promotion_probability < model.p_word_faulty


class TestTableIII:
    @pytest.mark.parametrize(
        "rate,expected",
        [(1e-4, 2.05e-5), (1e-5, 2.05e-7), (1e-6, 2.05e-9)],
    )
    def test_paper_approximation_matches_table(self, rate, expected):
        model = ScalingFaultModel(bit_error_rate=rate)
        assert model.p_multiple_catch_words_paper_approx() == pytest.approx(
            expected, rel=0.01
        )

    def test_exact_probability_binomial(self):
        model = ScalingFaultModel(bit_error_rate=1e-4, chips_per_access=8)
        p = model.p_word_faulty
        expected = 1 - (1 - p) ** 8 - 8 * p * (1 - p) ** 7
        assert model.p_multiple_catch_words() == pytest.approx(expected)

    def test_scales_with_chip_count(self):
        small = ScalingFaultModel(bit_error_rate=1e-4, chips_per_access=8)
        large = ScalingFaultModel(bit_error_rate=1e-4, chips_per_access=16)
        assert large.p_multiple_catch_words() > small.p_multiple_catch_words()

    def test_serial_mode_interval_is_reciprocal(self):
        model = ScalingFaultModel(bit_error_rate=1e-4)
        assert model.serial_mode_interval_accesses() == pytest.approx(
            1.0 / model.p_multiple_catch_words()
        )


class TestInterLineThreshold:
    def test_paper_band_at_1e4(self):
        """Section VIII: ~1e-12 chance that 10% of a row's 128 lines
        carry scaling faults at a 1e-4 rate."""
        model = ScalingFaultModel(bit_error_rate=1e-4)
        p = model.p_row_reaches_threshold()
        assert 1e-14 < p < 1e-10

    def test_threshold_monotone_in_rate(self):
        lo = ScalingFaultModel(bit_error_rate=1e-5).p_row_reaches_threshold()
        hi = ScalingFaultModel(bit_error_rate=1e-3).p_row_reaches_threshold()
        assert hi > lo

    def test_threshold_monotone_in_cutoff(self):
        model = ScalingFaultModel(bit_error_rate=1e-4)
        loose = model.p_row_reaches_threshold(threshold=0.05)
        strict = model.p_row_reaches_threshold(threshold=0.20)
        assert loose > strict

    def test_tail_sums_correctly_for_moderate_p(self):
        # Cross-check against a direct binomial sum at a friendly rate.
        model = ScalingFaultModel(bit_error_rate=5e-3)
        p_line = model.p_word_faulty
        n, need = 16, 2
        direct = sum(
            math.comb(n, k) * p_line**k * (1 - p_line) ** (n - k)
            for k in range(need, n + 1)
        )
        computed = model.p_row_reaches_threshold(
            lines_per_row=16, threshold=need / 16
        )
        assert computed == pytest.approx(direct, rel=1e-6)
