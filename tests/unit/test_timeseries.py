"""TelemetrySampler under a fake clock: rates, quantiles, exports.

All time sources are injected, so every assertion here is exact --
no sleeps, no tolerance bands.  The sampler's contract: counter rates
are deltas over elapsed fake-time, quantiles come from the live timer
histograms, rate-limiting declines cheaply, and the JSONL export
round-trips through :func:`read_timeseries`.
"""

import json

import pytest

from repro.obs import OBS, TelemetrySampler, peak_rss_kb, read_timeseries
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import MAX_SAMPLES


@pytest.fixture(autouse=True)
def _clean_obs():
    was_enabled = OBS.enabled
    yield
    OBS.enabled = was_enabled
    OBS.reset()


class FakeClock:
    """A monotonic clock advanced explicitly by the test."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _sampler(registry, clock, **kwargs):
    kwargs.setdefault("interval_s", 2.0)
    kwargs.setdefault("wall", lambda: 1_000_000.0)
    kwargs.setdefault("rss_fn", lambda: 4096)
    return TelemetrySampler(
        registry=registry, clock=clock, **kwargs
    )


class TestRates:
    def test_first_sample_measures_from_construction(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        sampler = _sampler(reg, clock)
        reg.counter("trials").inc(500)
        clock.advance(10.0)
        record = sampler.sample()
        assert record["counters"]["trials"] == 500
        assert record["rates"]["trials"] == pytest.approx(50.0)

    def test_rate_is_delta_since_previous_sample(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        sampler = _sampler(reg, clock)
        reg.counter("trials").inc(100)
        clock.advance(10.0)
        sampler.sample()
        reg.counter("trials").inc(40)
        clock.advance(4.0)
        record = sampler.sample()
        assert record["rates"]["trials"] == pytest.approx(10.0)

    def test_stalled_counter_shows_exact_zero(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        sampler = _sampler(reg, clock)
        reg.counter("trials").inc(7)
        clock.advance(1.0)
        sampler.sample()
        clock.advance(5.0)
        record = sampler.sample()
        assert record["rates"]["trials"] == 0.0

    def test_zero_elapsed_omits_rates(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        sampler = _sampler(reg, clock)
        reg.counter("trials").inc(3)
        record = sampler.sample()  # no fake time has passed at all
        assert record["rates"] == {}


class TestRateLimiting:
    def test_maybe_sample_declines_within_interval(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        sampler = _sampler(reg, clock, interval_s=2.0)
        clock.advance(0.1)
        assert sampler.maybe_sample() is not None
        clock.advance(1.9)
        assert sampler.maybe_sample() is None
        clock.advance(0.2)
        assert sampler.maybe_sample() is not None
        assert len(sampler.samples) == 2

    def test_force_overrides_the_interval(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        sampler = _sampler(reg, clock, interval_s=60.0)
        assert sampler.maybe_sample() is not None
        assert sampler.maybe_sample() is None
        assert sampler.maybe_sample(force=True) is not None

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            TelemetrySampler(interval_s=-1.0)


class TestQuantilesAndGauges:
    def test_timer_quantiles_appear_per_sample(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        sampler = _sampler(reg, clock)
        for v in (0.010, 0.020, 0.030, 0.040):
            reg.timer("shard_s").observe(v)
        clock.advance(1.0)
        record = sampler.sample()
        qs = record["quantiles"]["shard_s"]
        assert set(qs) == {"p50", "p95", "p99"}
        assert 0.0 < qs["p50"] <= qs["p95"] <= qs["p99"]

    def test_gauges_and_rss_exported(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        sampler = _sampler(reg, clock)
        reg.gauge("workers").set(4)
        clock.advance(1.0)
        record = sampler.sample()
        assert record["gauges"]["workers"] == 4
        assert record["rss_kb"] == 4096
        assert record["kind"] == "sample"
        assert record["uptime_s"] == pytest.approx(1.0)


class TestDeterminism:
    def test_identical_driving_yields_identical_jsonl(self):
        def run():
            reg = MetricsRegistry()
            clock = FakeClock()
            sampler = _sampler(reg, clock)
            for step in range(3):
                reg.counter("trials").inc(10 * (step + 1))
                reg.timer("shard_s").observe(0.005 * (step + 1))
                clock.advance(3.0)
                sampler.maybe_sample()
            return sampler.to_jsonl()

        assert run() == run()


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        clock = FakeClock()
        sampler = _sampler(reg, clock)
        reg.counter("trials").inc(5)
        clock.advance(1.0)
        sampler.sample()
        out = tmp_path / "ts.jsonl"
        sampler.write_jsonl(str(out))
        lines = out.read_text().strip().split("\n")
        meta = json.loads(lines[0])
        assert meta["kind"] == "timeseries_meta"
        assert meta["samples"] == 1
        samples = read_timeseries(str(out))
        assert len(samples) == 1
        assert samples[0]["counters"]["trials"] == 5

    def test_write_is_atomic_no_partial_file_on_success(self, tmp_path):
        reg = MetricsRegistry()
        clock = FakeClock()
        sampler = _sampler(reg, clock)
        clock.advance(1.0)
        sampler.sample()
        out = tmp_path / "sub" / "ts.jsonl"
        out.parent.mkdir()
        sampler.write_jsonl(str(out))
        # atomic_write_text leaves no temp droppings next to the target
        assert [p.name for p in out.parent.iterdir()] == ["ts.jsonl"]

    def test_memory_bound_drops_oldest(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        sampler = _sampler(reg, clock, interval_s=0.0)
        for _ in range(MAX_SAMPLES + 5):
            clock.advance(1.0)
            sampler.sample()
        assert len(sampler.samples) == MAX_SAMPLES
        assert sampler.dropped == 5


class TestGlobalWiring:
    def test_default_registry_is_the_switchboard(self):
        clock = FakeClock()
        sampler = TelemetrySampler(
            clock=clock, wall=lambda: 0.0, rss_fn=lambda: None
        )
        OBS.enable()
        OBS.registry.counter("wired").inc(3)
        clock.advance(1.0)
        record = sampler.sample()
        assert record["counters"]["wired"] == 3
        assert record["rss_kb"] is None

    def test_peak_rss_positive_on_posix(self):
        rss = peak_rss_kb()
        assert rss is None or rss > 0


class TestEngineWiring:
    """simulate()/campaigns drive an installed sampler to completion."""

    def test_simulate_feeds_installed_sampler(self):
        from repro.faultsim import MonteCarloConfig, XedScheme, simulate

        OBS.reset()
        OBS.enable()
        OBS.sampler = TelemetrySampler(
            interval_s=0.0, wall=lambda: 0.0, rss_fn=lambda: 1
        )
        config = MonteCarloConfig(
            num_systems=1000, years=2.0, seed=7, scaling_rate=2.0,
            faultsim_backend="vectorized",
        )
        simulate(XedScheme(), config, workers=1, shard_size=250)
        samples = OBS.sampler.samples
        # one per shard-completion callback plus the forced final one
        assert len(samples) >= 5
        assert samples[-1]["counters"]["faultsim.systems_done"] == 1000

    def test_campaign_feeds_installed_sampler(self):
        from repro.faultsim.campaign import run_xed_campaign

        OBS.reset()
        OBS.enable()
        OBS.sampler = TelemetrySampler(
            interval_s=0.0, wall=lambda: 0.0, rss_fn=lambda: 1
        )
        run_xed_campaign(trials=8, seed=7, shard_size=4)
        samples = OBS.sampler.samples
        assert samples
        assert samples[-1]["counters"]["campaign.trials_done"] == 8
