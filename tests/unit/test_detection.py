"""Unit tests for the Table-II detection-rate analysis harness."""

import pytest

from repro.ecc import (
    CRC8ATMCode,
    HammingSECDED,
    aligned_burst_patterns,
    contiguous_burst_patterns,
    detection_rate_burst,
    detection_rate_random,
    detection_table,
)
from repro.ecc.secded import popcount


class TestPatternGenerators:
    def test_contiguous_burst_count_and_shape(self):
        patterns = list(contiguous_burst_patterns(72, 4))
        assert len(patterns) == 69
        for p in patterns:
            assert popcount(p) == 4
            # A contiguous run: p / lowest-set-bit == 0b1111.
            low = p & -p
            assert p // low == 0b1111

    def test_aligned_burst_count(self):
        patterns = list(aligned_burst_patterns(72, 4, lane=8))
        assert len(patterns) == 9 * 70  # 9 lanes x C(8,4)
        for p in patterns:
            assert popcount(p) == 4

    def test_aligned_patterns_stay_in_one_lane(self):
        for p in aligned_burst_patterns(72, 3):
            lanes = {b // 8 for b in range(72) if (p >> b) & 1}
            assert len(lanes) == 1

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            list(contiguous_burst_patterns(72, 0))
        with pytest.raises(ValueError):
            list(contiguous_burst_patterns(72, 73))
        with pytest.raises(ValueError):
            list(aligned_burst_patterns(72, 9, lane=8))
        with pytest.raises(ValueError):
            list(aligned_burst_patterns(70, 2, lane=8))


class TestDetectionRates:
    def test_single_and_double_errors_always_detected(self, secded_code):
        assert detection_rate_random(secded_code, 1) == 1.0
        assert detection_rate_random(secded_code, 2) == 1.0

    def test_odd_errors_always_detected(self, secded_code):
        assert detection_rate_random(secded_code, 3, samples=3000) == 1.0
        assert detection_rate_random(secded_code, 5, samples=3000) == 1.0

    def test_crc8_bursts_100_percent(self, crc8):
        for e in range(1, 9):
            assert detection_rate_burst(crc8, e, mode="aligned") == 1.0
            assert detection_rate_burst(crc8, e, mode="contiguous") == 1.0

    def test_hamming_weaker_than_crc8_on_burst4(self, hamming, crc8):
        h = detection_rate_burst(hamming, 4, mode="aligned")
        c = detection_rate_burst(crc8, 4, mode="aligned")
        assert c == 1.0
        assert h < c  # the paper's Table-II ordering

    def test_random_even_weight_band(self, secded_code):
        rate = detection_rate_random(secded_code, 4, samples=20000)
        assert 0.97 < rate < 1.0

    def test_unknown_burst_mode(self, crc8):
        with pytest.raises(ValueError):
            detection_rate_burst(crc8, 4, mode="spiral")

    def test_deterministic_given_seed(self, hamming):
        a = detection_rate_random(hamming, 6, samples=2000, seed=7)
        b = detection_rate_random(hamming, 6, samples=2000, seed=7)
        assert a == b


class TestDetectionTable:
    @pytest.fixture(scope="class")
    def report(self):
        return detection_table(
            {"Hamming": HammingSECDED(), "CRC8-ATM": CRC8ATMCode()},
            error_counts=(1, 2, 3, 4),
            random_samples=2000,
        )

    def test_structure(self, report):
        assert report.error_counts == [1, 2, 3, 4]
        assert set(report.rates) == {"Hamming", "CRC8-ATM"}
        for modes in report.rates.values():
            assert set(modes) == {"random", "burst"}
            assert all(len(v) == 4 for v in modes.values())

    def test_row_accessor(self, report):
        row = report.row(4)
        assert row["CRC8-ATM"]["burst"] == 1.0

    def test_format_contains_all_codes(self, report):
        text = report.format_table()
        assert "Hamming" in text and "CRC8-ATM" in text
        assert "100.00%" in text


class TestBackendEquality:
    """Scalar and batched backends on the same pattern spaces."""

    def test_exhaustive_random_rates_identical(self, secded_code):
        for errors in (1, 2, 3):
            scalar = detection_rate_random(secded_code, errors)
            batched = detection_rate_random(
                secded_code, errors, backend="batched"
            )
            assert scalar == batched

    def test_burst_rates_identical(self, secded_code):
        for errors in (1, 2, 4, 8):
            for mode in ("aligned", "contiguous"):
                scalar = detection_rate_burst(secded_code, errors, mode=mode)
                batched = detection_rate_burst(
                    secded_code, errors, mode=mode, backend="batched"
                )
                assert scalar == batched

    def test_sampled_rates_agree_in_distribution(self, hamming):
        scalar = detection_rate_random(hamming, 4, samples=20000, seed=3)
        batched = detection_rate_random(
            hamming, 4, samples=20000, seed=3, backend="batched"
        )
        assert scalar == pytest.approx(batched, abs=0.01)

    def test_batched_sampled_deterministic_given_seed(self, hamming):
        a = detection_rate_random(
            hamming, 6, samples=2000, seed=7, backend="batched"
        )
        b = detection_rate_random(
            hamming, 6, samples=2000, seed=7, backend="batched"
        )
        assert a == b

    def test_table_identical_on_exhaustive_counts(self):
        codes = {"Hamming": HammingSECDED(), "CRC8-ATM": CRC8ATMCode()}
        scalar = detection_table(codes, error_counts=(1, 2, 3))
        batched = detection_table(
            codes, error_counts=(1, 2, 3), backend="batched"
        )
        assert scalar.rates == batched.rates

    def test_unknown_backend_rejected(self, hamming):
        with pytest.raises(ValueError):
            detection_rate_random(hamming, 2, backend="simd")
        with pytest.raises(ValueError):
            detection_rate_burst(hamming, 2, backend="simd")
        with pytest.raises(ValueError):
            detection_table({"h": hamming}, backend="simd")
