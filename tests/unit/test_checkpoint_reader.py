"""Incremental checkpoint tailing vs. full re-reads.

PR 10's fix: progress pollers used to call :func:`load_checkpoint` on
every poll, re-parsing and re-hashing the whole file each time.
:class:`IncrementalCheckpointReader` only consumes newly appended
bytes; these tests prove the one property that makes that safe --
**after every mutation of the file, ``poll()`` reports exactly the
records a fresh ``load_checkpoint`` of the same bytes would** --
across appends, torn tails, corrupt lines, resume repairs, and
whole-file rewrites.  They also pin the append-only write path itself:
one ``add`` grows the file by one line and never touches earlier
bytes, which is what bounds per-shard persistence at O(1).
"""

import json

from repro.runtime import (
    CheckpointStore,
    IncrementalCheckpointReader,
    RunFingerprint,
    config_digest,
    load_checkpoint,
)


def _fingerprint(**overrides) -> RunFingerprint:
    fields = dict(
        kind="reader.test", seed=3, total=40, shard_size=10,
        config_hash=config_digest({"k": 1}), code_version="1.0.0",
    )
    fields.update(overrides)
    return RunFingerprint(**fields)


def _lines(records):
    """Comparable image of a records dict (index -> serialised line)."""
    return {index: record.to_line() for index, record in records.items()}


def _assert_matches_full_read(reader, path):
    """The equivalence at the heart of the contract."""
    assert _lines(reader.poll()) == _lines(load_checkpoint(path).records)


class TestIncrementalEquivalence:
    def test_tracks_every_append(self, tmp_path):
        path = tmp_path / "run.ckpt"
        store = CheckpointStore.create(path, _fingerprint())
        reader = IncrementalCheckpointReader(path)
        _assert_matches_full_read(reader, path)
        for index in range(4):
            store.add(index, {"start": index * 10, "sum": index})
            _assert_matches_full_read(reader, path)
        assert reader.fingerprint == _fingerprint().to_dict()

    def test_missing_file_reports_empty_then_catches_up(self, tmp_path):
        path = tmp_path / "late.ckpt"
        reader = IncrementalCheckpointReader(path)
        assert reader.poll() == {}
        store = CheckpointStore.create(path, _fingerprint())
        store.add(0, {"sum": 1})
        _assert_matches_full_read(reader, path)

    def test_torn_tail_append_is_deferred_not_lost(self, tmp_path):
        path = tmp_path / "torn.ckpt"
        store = CheckpointStore.create(path, _fingerprint())
        store.add(0, {"sum": 1})
        reader = IncrementalCheckpointReader(path)
        reader.poll()
        # Simulate a crash mid-append: half a record, no newline.
        from repro.runtime.checkpoint import ShardRecord

        line = ShardRecord(index=1, payload={"sum": 2}).to_line()
        with path.open("a", encoding="utf-8") as fh:
            fh.write(line[: len(line) // 2])
        assert set(reader.poll()) == {0}
        # The writer completes the line; the next poll consumes it.
        with path.open("a", encoding="utf-8") as fh:
            fh.write(line[len(line) // 2 :] + "\n")
        assert set(reader.poll()) == {0, 1}
        _assert_matches_full_read(reader, path)

    def test_corrupt_line_stops_without_consuming(self, tmp_path):
        path = tmp_path / "corrupt.ckpt"
        store = CheckpointStore.create(path, _fingerprint())
        store.add(0, {"sum": 1})
        reader = IncrementalCheckpointReader(path)
        reader.poll()
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"record": "shard", "index": 9, "digest": "junk"}\n')
        # Both readers agree: the invalid tail record does not exist.
        _assert_matches_full_read(reader, path)
        assert set(reader.records) == {0}
        # A resume cleanup repairs the file (drops the bad tail); the
        # reader resumes from its held offset against the clean bytes
        # and keeps consuming subsequent appends.
        repaired = CheckpointStore.resume(path, _fingerprint())
        assert repaired.discarded == 1
        repaired.add(1, {"sum": 2})
        assert set(reader.poll()) == {0, 1}
        _assert_matches_full_read(reader, path)

    def test_whole_file_rewrite_is_detected_and_reread(self, tmp_path):
        path = tmp_path / "swap.ckpt"
        store = CheckpointStore.create(path, _fingerprint())
        for index in range(3):
            store.add(index, {"sum": index})
        reader = IncrementalCheckpointReader(path)
        assert set(reader.poll()) == {0, 1, 2}
        # Another run's checkpoint atomically replaces the file.
        other = CheckpointStore.create(
            path, _fingerprint(seed=99, config_hash=config_digest({"k": 2}))
        )
        other.add(7, {"sum": 70})
        records = reader.poll()
        assert set(records) == {7}
        assert reader.fingerprint == _fingerprint(
            seed=99, config_hash=config_digest({"k": 2})
        ).to_dict()
        _assert_matches_full_read(reader, path)

    def test_conflicting_readd_rewrite_does_not_leave_stale_record(
        self, tmp_path
    ):
        path = tmp_path / "conflict.ckpt"
        store = CheckpointStore.create(path, _fingerprint())
        store.add(0, {"sum": 1})
        store.add(1, {"sum": 2})
        reader = IncrementalCheckpointReader(path)
        reader.poll()
        # Re-adding an index with different content forces a rewrite;
        # the reader must notice and serve the new record, not the one
        # it already consumed.
        store.add(0, {"sum": 999})
        records = reader.poll()
        assert records[0].payload == {"sum": 999}
        _assert_matches_full_read(reader, path)


class TestAppendOnlyWrites:
    def test_add_appends_one_line_and_keeps_prefix_bytes(self, tmp_path):
        path = tmp_path / "append.ckpt"
        store = CheckpointStore.create(path, _fingerprint())
        previous = path.read_bytes()
        for index in range(5):
            store.add(index, {"sum": index})
            current = path.read_bytes()
            # Strict growth: the old file is a byte prefix of the new.
            assert current.startswith(previous)
            appended = current[len(previous):]
            assert appended.endswith(b"\n")
            assert appended.count(b"\n") == 1
            previous = current

    def test_idempotent_readd_leaves_file_untouched(self, tmp_path):
        path = tmp_path / "idem.ckpt"
        store = CheckpointStore.create(path, _fingerprint())
        store.add(0, {"sum": 1})
        before = path.read_bytes()
        store.add(0, {"sum": 1})  # byte-identical re-delivery
        assert path.read_bytes() == before

    def test_resume_without_damage_keeps_appending(self, tmp_path):
        path = tmp_path / "resume.ckpt"
        store = CheckpointStore.create(path, _fingerprint())
        store.add(0, {"sum": 1})
        resumed = CheckpointStore.resume(path, _fingerprint())
        before = path.read_bytes()
        resumed.add(1, {"sum": 2})
        assert path.read_bytes().startswith(before)
        loaded = load_checkpoint(path)
        assert set(loaded.records) == {0, 1}

    def test_file_order_is_completion_order(self, tmp_path):
        path = tmp_path / "order.ckpt"
        store = CheckpointStore.create(path, _fingerprint())
        for index in (2, 0, 1):  # out-of-index-order completion
            store.add(index, {"sum": index})
        lines = path.read_text(encoding="utf-8").splitlines()
        indices = [json.loads(line)["index"] for line in lines[1:]]
        assert indices == [2, 0, 1]
