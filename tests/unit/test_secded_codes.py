"""Unit tests for the (72,64) SECDED codes: Hamming and CRC8-ATM.

The parametrised ``secded_code`` fixture runs shared SECDED contracts
against both implementations; code-specific classes pin down the
properties that make CRC8-ATM the paper's recommended on-die code.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.crc8 import CRC8ATMCode, CRC8_ATM_POLY, _poly_mod
from repro.ecc.hamming import HammingSECDED
from repro.ecc.secded import DecodeOutcome, iter_bits, popcount

data64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
bitpos = st.integers(min_value=0, max_value=71)


class TestSharedSECDEDContract:
    """Properties any (72,64) SECDED code must satisfy."""

    @given(data=data64)
    @settings(max_examples=150)
    def test_roundtrip(self, secded_code, data):
        assert secded_code.check_roundtrip(data)

    @given(data=data64, bit=bitpos)
    @settings(max_examples=200)
    def test_single_bit_corrected(self, secded_code, data, bit):
        word = secded_code.encode(data) ^ (1 << bit)
        result = secded_code.decode(word)
        assert result.outcome is DecodeOutcome.CORRECTED
        assert result.data == data
        assert result.corrected_bit == bit

    def test_every_single_bit_position_exhaustive(self, secded_code):
        data = 0xDEADBEEF12345678
        cw = secded_code.encode(data)
        for bit in range(72):
            result = secded_code.decode(cw ^ (1 << bit))
            assert result.outcome is DecodeOutcome.CORRECTED
            assert result.data == data

    @given(data=data64, b1=bitpos, b2=bitpos)
    @settings(max_examples=200)
    def test_double_bit_detected_never_miscorrected(self, secded_code, data, b1, b2):
        if b1 == b2:
            return
        word = secded_code.encode(data) ^ (1 << b1) ^ (1 << b2)
        result = secded_code.decode(word)
        assert result.outcome is DecodeOutcome.DETECTED_UNCORRECTABLE

    def test_zero_and_ones_boundary_values(self, secded_code):
        for data in (0, (1 << 64) - 1, 1, 1 << 63):
            assert secded_code.check_roundtrip(data)

    def test_encode_rejects_oversized_data(self, secded_code):
        with pytest.raises(ValueError):
            secded_code.encode(1 << 64)

    def test_decode_rejects_oversized_word(self, secded_code):
        with pytest.raises(ValueError):
            secded_code.decode(1 << 72)

    def test_is_codeword_rejects_oversized_word(self, secded_code):
        """Regression: is_codeword used to silently truncate wide words.

        ``CRC8ATMCode.is_codeword(1 << 100)`` reported True (the
        byte-folding remainder ignores bits above degree 71) and the
        Hamming implementation masked high bits away; both must validate
        input width exactly like ``encode``/``decode`` do.
        """
        for word in (1 << 72, 1 << 100, (1 << 73) | 1, -1):
            with pytest.raises(ValueError):
                secded_code.is_codeword(word)

    def test_is_codeword_accepts_boundary_words(self, secded_code):
        assert secded_code.is_codeword(secded_code.encode((1 << 64) - 1))
        assert secded_code.is_codeword(0)
        # The top in-range word must be judged, not rejected.
        secded_code.is_codeword((1 << 72) - 1)

    def test_detects_raises_on_zero_pattern(self, secded_code):
        with pytest.raises(ValueError):
            secded_code.detects(0)

    @given(data=data64)
    @settings(max_examples=50)
    def test_codeword_space_is_linear(self, secded_code, data):
        # c(a) ^ c(b) must be a codeword for linear codes.
        other = 0x0F0F_F0F0_1234_5678
        xor = secded_code.encode(data) ^ secded_code.encode(other)
        assert secded_code.is_codeword(xor)

    @given(data=data64)
    @settings(max_examples=50)
    def test_distinct_data_distinct_codewords(self, secded_code, data):
        if data != 42:
            assert secded_code.encode(data) != secded_code.encode(42)


class TestHammingSpecifics:
    def test_check_positions_are_powers_of_two(self, hamming):
        assert HammingSECDED.CHECK_POSITIONS == (1, 2, 4, 8, 16, 32, 64)

    def test_parity_bit_only_error(self, hamming):
        data = 0x123456789ABCDEF0
        word = hamming.encode(data) ^ (1 << HammingSECDED.PARITY_BIT)
        result = hamming.decode(word)
        assert result.outcome is DecodeOutcome.CORRECTED
        assert result.corrected_bit == HammingSECDED.PARITY_BIT
        assert result.data == data

    def test_syndrome_of_clean_word_is_zero(self, hamming):
        assert hamming._syndrome(hamming.encode(0xABCDEF)) == 0

    def test_weak_on_some_even_weight_patterns(self, hamming):
        """The Table-II weakness: some multi-bit patterns are codewords."""
        undetected = 0
        rng = random.Random(1)
        for _ in range(30000):
            bits = rng.sample(range(72), 4)
            pattern = sum(1 << b for b in bits)
            if hamming.is_codeword(pattern):
                undetected += 1
        assert undetected > 0  # Hamming misses some weight-4 patterns

    def test_odd_weight_always_detected(self, hamming):
        rng = random.Random(2)
        for weight in (3, 5, 7):
            for _ in range(2000):
                bits = rng.sample(range(72), weight)
                assert not hamming.is_codeword(sum(1 << b for b in bits))


class TestCRC8Specifics:
    def test_polynomial_constant(self):
        assert CRC8_ATM_POLY == 0x107  # x^8 + x^2 + x + 1

    def test_rejects_wrong_degree_polynomial(self):
        with pytest.raises(ValueError):
            CRC8ATMCode(poly=0x7)
        with pytest.raises(ValueError):
            CRC8ATMCode(poly=0x207)

    def test_syndrome_table_is_injective(self, crc8):
        syndromes = set(crc8._bit_syndrome)
        assert len(syndromes) == 72
        assert 0 not in syndromes

    def test_remainder_matches_reference_bitwise_division(self, crc8):
        rng = random.Random(3)
        for _ in range(500):
            word = rng.getrandbits(72)
            assert crc8._remainder(word) == _poly_mod(word, 72, crc8.poly)

    def test_all_bursts_up_to_8_detected(self, crc8):
        """The degree-8 CRC burst guarantee behind Table II's 100%s."""
        for length in range(1, 9):
            for inner in range(1 << max(0, length - 2)):
                # A burst of `length` has fixed endpoints, free interior.
                pattern = (1 << (length - 1)) | 1 if length > 1 else 1
                pattern |= inner << 1
                for start in range(72 - length + 1):
                    assert not crc8.is_codeword(pattern << start)

    def test_odd_weight_always_detected(self, crc8):
        """The (x+1) factor: every codeword has even weight."""
        rng = random.Random(4)
        for weight in (1, 3, 5, 7):
            for _ in range(2000):
                bits = rng.sample(range(72), weight)
                assert not crc8.is_codeword(sum(1 << b for b in bits))

    def test_even_weight_detection_about_99_percent(self, crc8):
        rng = random.Random(5)
        misses = 0
        trials = 40000
        for _ in range(trials):
            bits = rng.sample(range(72), 4)
            if crc8.is_codeword(sum(1 << b for b in bits)):
                misses += 1
        # Expected miss rate ~2^-7 = 0.78%; allow a generous band.
        assert 0.001 < misses / trials < 0.02

    def test_no_weight3_codewords_so_secded_is_sound(self, crc8):
        """No double error can alias a single error's syndrome."""
        single = set(crc8._bit_syndrome)
        for b1, b2 in itertools.combinations(range(72), 2):
            synd = crc8._bit_syndrome[b1] ^ crc8._bit_syndrome[b2]
            assert synd not in single


class TestBitHelpers:
    def test_iter_bits(self):
        assert list(iter_bits(0b101001, 6)) == [0, 3, 5]
        assert list(iter_bits(0, 8)) == []

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0xFF) == 8
        assert popcount(1 << 71) == 1
