"""Tests for small public surfaces: result types, requests, packaging."""

import pytest

import repro
from repro.core.types import ReadStatus, XedReadResult
from repro.perfsim.requests import MemoryRequest, RequestType


class TestXedReadResult:
    def test_data_property_little_endian(self):
        result = XedReadResult(ReadStatus.CLEAN, [1, 2, 3, 4, 5, 6, 7, 8])
        data = result.data
        assert len(data) == 64
        assert data[0] == 1 and data[8] == 2

    def test_ok_reflects_status(self):
        ok = XedReadResult(ReadStatus.CORRECTED_ERASURE, [0] * 8)
        bad = XedReadResult(ReadStatus.DUE, [0] * 8)
        assert ok.ok and not bad.ok

    def test_defaults(self):
        result = XedReadResult(ReadStatus.CLEAN, [0] * 8)
        assert result.catch_word_chips == []
        assert result.reconstructed_chip is None
        assert not result.collision and not result.serial_mode


class TestMemoryRequest:
    def make(self):
        return MemoryRequest(
            req_type=RequestType.READ, core=1, channel=0, rank=0, bank=2,
            row=10, column=3, arrival=5.0,
        )

    def test_served_and_latency(self):
        req = self.make()
        assert not req.served
        assert req.queue_latency is None
        req.issue_time = 9.0
        req.completion_time = 24.0
        assert req.served
        assert req.queue_latency == pytest.approx(4.0)


class TestPackaging:
    def test_version_exported(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.core
        import repro.dram
        import repro.ecc
        import repro.faultsim
        import repro.perfsim

    def test_core_public_names(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_ecc_public_names(self):
        import repro.ecc as ecc

        for name in ecc.__all__:
            assert hasattr(ecc, name), name

    def test_faultsim_public_names(self):
        import repro.faultsim as fs

        for name in fs.__all__:
            assert hasattr(fs, name), name

    def test_perfsim_public_names(self):
        import repro.perfsim as ps

        for name in ps.__all__:
            assert hasattr(ps, name), name
