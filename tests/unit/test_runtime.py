"""Unit tests for the fault-tolerant campaign runtime.

Covers the checkpoint file format (digests, atomicity, tail
discarding, fingerprint validation), the chaos spec parser, and the
in-process (``workers=1``) resilient executor: retry with backoff,
quarantine under ``keep_going``, SIGINT draining, and the central
claim -- a crashed/interrupted run resumed from its checkpoint merges
to a bit-identical result with equal telemetry.  The pool-based
(``workers=4``) recovery paths live in ``test_chaos.py``.
"""

import json
import os
import signal

import pytest

from repro.faultsim.schemes import XedScheme
from repro.faultsim.simulator import (
    MonteCarloConfig,
    ReliabilityResult,
    reliability_fingerprint,
    simulate,
)
from repro.obs import OBS
from repro.runtime import (
    ChaosPolicy,
    ChaosSpecError,
    CheckpointError,
    CheckpointMismatch,
    CheckpointStore,
    RunFingerprint,
    RunInterrupted,
    RunOutcome,
    RuntimePolicy,
    ShardFailure,
    config_digest,
    corrupt_checkpoint_tail,
    current_policy,
    load_checkpoint,
    parse_chaos_spec,
    run_resilient,
    use_policy,
)

CFG = MonteCarloConfig(num_systems=30_000, seed=11)
SHARD_SIZE = 10_000

#: Event kinds emitted by the runtime itself -- excluded when comparing
#: engine telemetry between an uninterrupted and a recovered run.
RUNTIME_KINDS = {
    "shard_retried", "shard_quarantined", "checkpoint_written",
    "run_signalled",
}


def _fingerprint(**overrides) -> RunFingerprint:
    fields = dict(
        kind="test.run", seed=1, total=30, shard_size=10,
        config_hash=config_digest({"x": 1}), code_version="1.0.0",
    )
    fields.update(overrides)
    return RunFingerprint(**fields)


def _sum_shard(start, count):
    """Trivial deterministic shard: sums its global index range."""
    return {"start": start, "sum": sum(range(start, start + count))}


def _shard_args(total=30, size=10):
    return [(start, size) for start in range(0, total, size)]


def _engine_counters(state):
    return {
        k: v for k, v in state["counters"].items()
        if k.startswith("faultsim.")
    }


def _engine_events(trace):
    return {
        k: v for k, v in trace.counts_by_kind().items()
        if k not in RUNTIME_KINDS
    }


@pytest.fixture
def obs_enabled():
    """Enable observability for a test and reset it afterwards."""
    OBS.reset()
    OBS.enable()
    OBS.progress_enabled = False
    yield OBS
    OBS.reset()
    OBS.disable()


class TestCheckpointFile:
    def test_roundtrip(self, tmp_path):
        fp = _fingerprint()
        store = CheckpointStore.create(tmp_path / "run.ckpt", fp)
        store.add(0, {"sum": 1}, metrics={"counters": {"c": 1}})
        store.add(2, {"sum": 3})
        loaded_fp, records, discarded = load_checkpoint(tmp_path / "run.ckpt")
        assert loaded_fp == fp.to_dict()
        assert sorted(records) == [0, 2]
        assert records[0].payload == {"sum": 1}
        assert records[0].metrics == {"counters": {"c": 1}}
        assert records[2].metrics is None
        assert discarded == 0

    def test_create_flushes_header_immediately(self, tmp_path):
        path = tmp_path / "run.ckpt"
        CheckpointStore.create(path, _fingerprint())
        assert path.exists()
        _, records, _ = load_checkpoint(path)
        assert records == {}

    def test_no_temp_files_left_behind(self, tmp_path):
        store = CheckpointStore.create(tmp_path / "run.ckpt", _fingerprint())
        store.add(0, {"sum": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["run.ckpt"]

    def test_corrupt_tail_discarded_not_fatal(self, tmp_path):
        path = tmp_path / "run.ckpt"
        store = CheckpointStore.create(path, _fingerprint())
        for i in range(3):
            store.add(i, {"sum": i})
        assert corrupt_checkpoint_tail(path, nbytes=8, seed=3) > 0
        _, records, discarded = load_checkpoint(path)
        assert sorted(records) == [0, 1]
        assert discarded == 1

    def test_truncated_tail_discarded(self, tmp_path):
        path = tmp_path / "run.ckpt"
        store = CheckpointStore.create(path, _fingerprint())
        store.add(0, {"sum": 1})
        store.add(1, {"sum": 2})
        raw = path.read_text()
        path.write_text(raw[: len(raw) - 20])  # tear the last record
        _, records, discarded = load_checkpoint(path)
        assert sorted(records) == [0]
        assert discarded == 1

    def test_resume_rewrites_corrupt_tail(self, tmp_path):
        path = tmp_path / "run.ckpt"
        fp = _fingerprint()
        store = CheckpointStore.create(path, fp)
        for i in range(2):
            store.add(i, {"sum": i})
        corrupt_checkpoint_tail(path, seed=1)
        resumed = CheckpointStore.resume(path, fp)
        assert resumed.discarded == 1
        assert sorted(resumed.completed) == [0]
        # the rewritten file is clean again
        _, records, discarded = load_checkpoint(path)
        assert sorted(records) == [0] and discarded == 0

    def test_fingerprint_mismatch_refused_with_field_diff(self, tmp_path):
        path = tmp_path / "run.ckpt"
        CheckpointStore.create(path, _fingerprint(seed=1))
        with pytest.raises(CheckpointMismatch) as exc:
            CheckpointStore.resume(path, _fingerprint(seed=2))
        assert "seed" in str(exc.value)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_text("")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        CheckpointStore.create(path, _fingerprint())
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99  # digest no longer matches
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_duplicate_index_keeps_first(self, tmp_path):
        from repro.runtime.checkpoint import ShardRecord

        path = tmp_path / "run.ckpt"
        store = CheckpointStore.create(path, _fingerprint())
        store.add(0, {"sum": 1})
        with path.open("a") as fh:
            fh.write(ShardRecord(0, {"sum": 999}).to_line() + "\n")
        _, records, _ = load_checkpoint(path)
        assert records[0].payload == {"sum": 1}

    def test_config_digest_is_order_insensitive(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest(
            {"b": 2, "a": 1}
        )
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_slug_is_filesystem_safe(self):
        slug = _fingerprint(kind="reliability.XED (9 chips)").slug()
        assert "/" not in slug and " " not in slug and "(" not in slug


class TestChaosSpec:
    def test_full_spec(self):
        policy = parse_chaos_spec("crash=2,5;hang=3;fault=0;attempts=2;hang-s=30")
        assert policy.crash_shards == (2, 5)
        assert policy.hang_shards == (3,)
        assert policy.fault_shards == (0,)
        assert policy.trigger_attempts == 2
        assert policy.hang_s == 30.0

    def test_triggers_respect_attempts(self):
        policy = parse_chaos_spec("crash=1;attempts=2")
        assert policy.should_crash(1, 1) and policy.should_crash(1, 2)
        assert not policy.should_crash(1, 3)
        assert not policy.should_crash(0, 1)

    @pytest.mark.parametrize("bad", [
        "crash", "mystery=1", "crash=x", "attempts=0", "hang-s=soon",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ChaosSpecError):
            parse_chaos_spec(bad)


class TestAmbientPolicy:
    def test_nesting_and_restore(self):
        assert current_policy() is None
        outer, inner = RuntimePolicy(), RuntimePolicy()
        with use_policy(outer):
            assert current_policy() is outer
            with use_policy(inner):
                assert current_policy() is inner
            assert current_policy() is outer
        assert current_policy() is None

    def test_outcome_completeness(self):
        outcome = RunOutcome(kind="t", total_shards=4, completed_shards=3)
        assert outcome.completeness == 0.75
        assert RunOutcome(kind="t", total_shards=0).completeness == 1.0


class TestResilientExecutor:
    """run_resilient with a trivial shard function, workers=1."""

    def _run(self, policy, total=30, **kwargs):
        return run_resilient(
            _sum_shard,
            _shard_args(total),
            workers=1,
            fingerprint=_fingerprint(total=total),
            policy=policy,
            encode=lambda r: r,
            decode=lambda p: p,
            **kwargs,
        )

    def test_plain_run_matches_direct_execution(self):
        results, outcome = self._run(RuntimePolicy())
        assert results == [_sum_shard(s, c) for s, c in _shard_args()]
        assert outcome.completed_shards == 3 and outcome.completeness == 1.0

    def test_crash_is_retried_and_result_identical(self):
        policy = RuntimePolicy(
            chaos=ChaosPolicy(crash_shards=(1,)), backoff_base_s=0.01
        )
        results, outcome = self._run(policy)
        assert results == [_sum_shard(s, c) for s, c in _shard_args()]
        assert outcome.crashes == 1 and outcome.retries == 1

    def test_retry_budget_exhausted_raises_shard_failure(self, tmp_path):
        policy = RuntimePolicy(
            checkpoint_dir=str(tmp_path), max_retries=1,
            chaos=ChaosPolicy(fault_shards=(1,), trigger_attempts=99),
            backoff_base_s=0.01,
        )
        with pytest.raises(ShardFailure) as exc:
            self._run(policy)
        assert exc.value.shard_index == 1
        # the checkpoint still holds every shard that completed
        _, records, _ = load_checkpoint(exc.value.checkpoint_path)
        assert 0 in records and 1 not in records

    def test_keep_going_quarantines_and_reports_completeness(self):
        policy = RuntimePolicy(
            keep_going=True, max_retries=1,
            chaos=ChaosPolicy(fault_shards=(1,), trigger_attempts=99),
            backoff_base_s=0.01,
        )
        results, outcome = self._run(policy)
        assert len(results) == 2
        assert outcome.quarantined_shards == (1,)
        assert outcome.completeness == pytest.approx(2 / 3)
        assert policy.quarantined_total == 1

    def test_checkpoint_then_resume_is_bit_identical(self, tmp_path):
        reference, _ = self._run(RuntimePolicy())
        # interrupt: permanent fault on shard 2 aborts the run
        failing = RuntimePolicy(
            checkpoint_dir=str(tmp_path), max_retries=0,
            chaos=ChaosPolicy(fault_shards=(2,), trigger_attempts=99),
            backoff_base_s=0.01,
        )
        with pytest.raises(ShardFailure):
            self._run(failing)
        # resume: only shard 2 re-runs, merged result identical
        done = []
        resumed = RuntimePolicy(resume_dir=str(tmp_path))
        results, outcome = self._run(resumed, on_shard_done=done.append)
        assert results == reference
        assert outcome.resumed_shards == 2
        assert sorted(done) == [0, 1, 2]

    def test_sigint_drains_checkpoints_and_resumes(self, tmp_path):
        reference, _ = self._run(RuntimePolicy())

        def interrupt_after_first(index):
            if index == 0:
                os.kill(os.getpid(), signal.SIGINT)

        policy = RuntimePolicy(checkpoint_dir=str(tmp_path))
        with pytest.raises(RunInterrupted) as exc:
            self._run(policy, on_shard_done=interrupt_after_first)
        assert exc.value.signal_name == "SIGINT"
        assert policy.outcomes[0].interrupted
        _, records, _ = load_checkpoint(exc.value.checkpoint_path)
        assert 0 in records and len(records) < 3
        # the previous SIGINT handler is restored after the run
        assert signal.getsignal(signal.SIGINT) is signal.default_int_handler

        resumed = RuntimePolicy(resume_dir=str(tmp_path))
        results, outcome = self._run(resumed)
        assert results == reference
        assert outcome.resumed_shards == len(records)


class TestResilientSimulate:
    """The Monte-Carlo engine under a runtime policy, workers=1."""

    def test_ambient_policy_routes_through_executor(self, tmp_path):
        reference = simulate(XedScheme(), CFG, shard_size=SHARD_SIZE)
        policy = RuntimePolicy(
            checkpoint_dir=str(tmp_path),
            chaos=ChaosPolicy(crash_shards=(1,)), backoff_base_s=0.01,
        )
        with use_policy(policy):
            recovered = simulate(XedScheme(), CFG, shard_size=SHARD_SIZE)
        assert recovered.failure_times_hours == reference.failure_times_hours
        assert recovered.kinds == reference.kinds
        assert policy.outcomes[0].crashes == 1
        assert policy.outcomes[0].checkpoint_path

    def test_result_payload_roundtrip_is_exact(self):
        result = simulate(XedScheme(), CFG, shard_size=SHARD_SIZE)
        clone = ReliabilityResult.from_payload(
            json.loads(json.dumps(result.to_payload()))
        )
        assert clone.failure_times_hours == result.failure_times_hours
        assert clone.kinds == result.kinds
        assert clone.num_systems == result.num_systems

    def test_fingerprint_pins_every_behaviour_knob(self):
        base = reliability_fingerprint(XedScheme(), CFG, SHARD_SIZE)
        scrubbed = reliability_fingerprint(
            XedScheme(),
            MonteCarloConfig(num_systems=30_000, seed=11, scrub_hours=24.0),
            SHARD_SIZE,
        )
        assert base.config_hash != scrubbed.config_hash
        assert base.mismatches(scrubbed.to_dict()) == ["config_hash"] or any(
            "config_hash" in d for d in base.mismatches(scrubbed.to_dict())
        )

    def test_crash_resume_preserves_obs_telemetry(self, tmp_path, obs_enabled):
        simulate(XedScheme(), CFG, shard_size=SHARD_SIZE)
        ref_counters = _engine_counters(OBS.registry.state())
        ref_events = _engine_events(OBS.trace)

        # interrupted run: permanent crash on shard 2, progress checkpointed
        OBS.reset()
        OBS.enable()
        OBS.progress_enabled = False
        failing = RuntimePolicy(
            checkpoint_dir=str(tmp_path), max_retries=0,
            chaos=ChaosPolicy(crash_shards=(2,), trigger_attempts=99),
            backoff_base_s=0.01,
        )
        with use_policy(failing):
            with pytest.raises(ShardFailure):
                simulate(XedScheme(), CFG, shard_size=SHARD_SIZE)

        # fresh process stands in: zeroed OBS, resume from the checkpoint
        OBS.reset()
        OBS.enable()
        OBS.progress_enabled = False
        with use_policy(RuntimePolicy(resume_dir=str(tmp_path))):
            resumed = simulate(XedScheme(), CFG, shard_size=SHARD_SIZE)

        assert _engine_counters(OBS.registry.state()) == ref_counters
        assert _engine_events(OBS.trace) == ref_events
        reference = simulate(XedScheme(), CFG, shard_size=SHARD_SIZE)
        assert resumed.failure_times_hours == reference.failure_times_hours

    def test_runtime_metrics_flow_through_obs(self, obs_enabled):
        policy = RuntimePolicy(
            chaos=ChaosPolicy(crash_shards=(0,)), backoff_base_s=0.01
        )
        with use_policy(policy):
            simulate(XedScheme(), CFG, shard_size=SHARD_SIZE)
        counters = OBS.registry.state()["counters"]
        assert counters["runtime.worker_crashes"] == 1
        assert counters["runtime.shard_retries"] == 1
        assert counters["runtime.shard_attempts"] == 4
        assert OBS.trace.counts_by_kind().get("shard_retried") == 1
