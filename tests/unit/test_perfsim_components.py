"""Unit tests for perfsim building blocks: timing, configs, traces, CPU."""

import pytest

from repro.perfsim.configs import (
    CHIPKILL,
    DOUBLE_CHIPKILL,
    ECC_DIMM,
    EXTRA_BURST_CHIPKILL,
    EXTRA_TXN_CHIPKILL,
    LOTECC,
    SCHEME_CONFIGS,
    XED,
    XED_CHIPKILL,
    XED_SCALING,
)
from repro.perfsim.cpu import Core
from repro.perfsim.requests import RequestType
from repro.perfsim.timing import DDR3Timing, SystemTiming
from repro.perfsim.trace import SyntheticTrace, TraceOp
from repro.perfsim.workloads import (
    SUITES,
    WORKLOADS,
    Workload,
    suite_workloads,
    workload_by_name,
)


class TestTiming:
    def test_clock_ratio_is_4(self):
        assert SystemTiming().cpu_cycles_per_bus_cycle == pytest.approx(4.0)

    def test_conversions_roundtrip(self):
        s = SystemTiming()
        assert s.to_bus_cycles(s.to_cpu_cycles(123.0)) == pytest.approx(123.0)

    def test_jedec_orderings(self):
        t = DDR3Timing()
        assert t.tRC == t.tRAS + t.tRP
        assert t.tFAW >= 2 * t.tRRD
        assert t.tBURST == 4  # 8 beats DDR

    def test_table_v_shape(self):
        s = SystemTiming()
        assert (s.channels, s.ranks_per_channel, s.banks_per_rank) == (4, 2, 8)
        assert (s.num_cores, s.rob_size, s.fetch_width) == (8, 160, 4)
        assert s.rows_per_bank == 32 * 1024 and s.columns_per_row == 128


class TestSchemeConfigs:
    def test_registry_complete(self):
        assert set(SCHEME_CONFIGS) >= {
            "ecc_dimm", "xed", "chipkill", "xed_chipkill",
            "double_chipkill", "lotecc",
        }

    def test_baseline_is_plain(self):
        assert ECC_DIMM.lockstep_ranks == 1
        assert ECC_DIMM.bus_cycles_per_access == 4

    def test_xed_timing_identical_to_baseline(self):
        for attr in ("lockstep_ranks", "lockstep_channels", "overfetch",
                     "burst_cycles", "extra_read_fraction",
                     "extra_write_fraction"):
            assert getattr(XED, attr) == getattr(ECC_DIMM, attr)

    def test_chipkill_shape(self):
        assert CHIPKILL.lockstep_ranks == 2
        assert CHIPKILL.overfetch == 2
        assert CHIPKILL.bus_cycles_per_access == 8  # 100% overfetch

    def test_double_chipkill_gangs_channels(self):
        assert DOUBLE_CHIPKILL.lockstep_channels == 2
        assert DOUBLE_CHIPKILL.lockstep_ranks == 2
        assert DOUBLE_CHIPKILL.chips_per_access == 36

    def test_xed_chipkill_matches_chipkill_traffic(self):
        assert XED_CHIPKILL.bus_cycles_per_access == CHIPKILL.bus_cycles_per_access
        assert XED_CHIPKILL.lockstep_ranks == CHIPKILL.lockstep_ranks

    def test_extra_burst_is_25_percent(self):
        assert EXTRA_BURST_CHIPKILL.burst_cycles == 5
        assert EXTRA_BURST_CHIPKILL.bus_cycles_per_access == 5

    def test_extra_txn_doubles_reads(self):
        assert EXTRA_TXN_CHIPKILL.extra_read_fraction == 1.0

    def test_lotecc_amplifies_writes(self):
        assert LOTECC.extra_write_fraction > 0

    def test_xed_scaling_serial_rate_matches_table_iii(self):
        assert XED_SCALING.serial_mode_rate == pytest.approx(2e-5)

    def test_describe_mentions_lockstep(self):
        assert "lockstep" in CHIPKILL.describe()


class TestWorkloads:
    def test_roster_has_31_benchmarks(self):
        assert len(WORKLOADS) == 31

    def test_figure11_names_present(self):
        for name in ("libquantum", "mcf", "lbm", "bwaves", "mummer",
                     "comm1", "comm5", "black", "stream"):
            workload_by_name(name)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            workload_by_name("doom")

    def test_suites_partition_roster(self):
        total = sum(len(suite_workloads(s)) for s in SUITES)
        assert total == len(WORKLOADS)

    def test_all_selected_benchmarks_exceed_1_mpki(self):
        assert all(w.mpki >= 1.0 for w in WORKLOADS)

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload("bad", "SPEC", -1.0, 0.5, 0.2)
        with pytest.raises(ValueError):
            Workload("bad", "SPEC", 1.0, 1.5, 0.2)
        with pytest.raises(ValueError):
            Workload("bad", "SPEC", 1.0, 0.5, 2.0)


class TestSyntheticTrace:
    def make(self, name="libquantum", core=0, seed=1, n=100_000):
        return SyntheticTrace(
            workload_by_name(name), n, 4, 2, 8, 32768, 128,
            core=core, seed=seed,
        )

    def test_deterministic(self):
        a = self.make().materialise()
        b = self.make().materialise()
        assert a == b

    def test_cores_decorrelated(self):
        a = self.make(core=0).materialise(100)
        b = self.make(core=1).materialise(100)
        assert a != b

    def test_mpki_approximately_respected(self):
        ops = self.make("mcf", n=200_000).materialise()
        mpki = len(ops) / 200.0
        assert mpki == pytest.approx(workload_by_name("mcf").mpki, rel=0.15)

    def test_write_fraction_respected(self):
        ops = self.make("lbm", n=200_000).materialise()
        writes = sum(op.req_type is RequestType.WRITE for op in ops)
        assert writes / len(ops) == pytest.approx(0.45, abs=0.05)

    def test_positions_strictly_increasing(self):
        ops = self.make(n=50_000).materialise()
        positions = [op.position for op in ops]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)

    def test_addresses_in_range(self):
        for op in self.make(n=20_000):
            assert 0 <= op.channel < 4
            assert 0 <= op.rank < 2
            assert 0 <= op.bank < 8
            assert 0 <= op.row < 32768
            assert 0 <= op.column < 128

    def test_row_locality_knob(self):
        def sequential_share(name):
            ops = self.make(name, n=300_000).materialise()
            seq = sum(
                1 for a, b in zip(ops, ops[1:])
                if b.row == a.row and b.bank == a.bank and b.column == a.column + 1
            )
            return seq / len(ops)

        assert sequential_share("libquantum") > sequential_share("mcf") + 0.3


class TestCoreModel:
    def make_core(self, ops, total=10_000, rob=160, rate=16.0):
        return Core(0, iter(ops), total, rob, rate)

    def test_fetch_rate_limits_issue(self):
        op = TraceOp(1600, RequestType.READ, 0, 0, 0, 0, 0)
        core = self.make_core([op])
        assert core.peek() is op
        # 1600 instructions at 16 per bus cycle -> ready at t=100.
        assert core.fetch_ready_time(op.position) == pytest.approx(100.0)

    def test_window_blocks_behind_outstanding_read(self):
        core = self.make_core([])
        core.track_read(100)
        # Instruction 100+160 cannot enter the ROB until read at 100 done.
        assert core.window_ready_time(261) is None
        # Instruction inside the window is fine.
        assert core.window_ready_time(200) is not None

    def test_read_completion_advances_retirement(self):
        core = self.make_core([])
        core.track_read(100)
        core.on_read_done(100, 50.0)
        assert core.retire_base_pos == 100
        assert core.retire_base_time == pytest.approx(50.0)
        assert core.window_ready_time(300) == pytest.approx(
            50.0 + (300 - 160 - 100) / 16.0
        )

    def test_out_of_order_completions_retire_in_order(self):
        core = self.make_core([])
        core.track_read(10)
        core.track_read(20)
        core.on_read_done(20, 5.0)   # younger finishes first
        assert core.retire_base_pos == 0  # head still blocks
        core.on_read_done(10, 8.0)
        assert core.retire_base_pos == 20
        # Head retired at 8.0; the younger read's data was ready earlier
        # but retirement is in-order.
        assert core.retire_base_time >= 8.0

    def test_finish_requires_drained_state(self):
        core = self.make_core([], total=1600)
        core.trace_done = True
        core.track_read(100)
        assert core.try_finish() is None
        core.on_read_done(100, 10.0)
        finish = core.try_finish()
        assert finish == pytest.approx(10.0 + (1600 - 100) / 16.0)
