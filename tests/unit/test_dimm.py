"""Unit tests for DIMM organisations: SECDED ECC-DIMM, XED, Chipkill rank."""

import random

import pytest

from repro.dram.chip import FaultGranularity
from repro.dram.dimm import ChipkillRank, EccDimm, XedDimm, xor_parity


def words(seed: int = 0, n: int = 8):
    rng = random.Random(seed)
    return [rng.getrandbits(64) for _ in range(n)]


class TestXorParity:
    def test_parity_of_identical_pairs_cancels(self):
        assert xor_parity([5, 5, 9, 9]) == 0

    def test_parity_roundtrip(self):
        ws = words(1)
        assert xor_parity(ws + [xor_parity(ws)]) == 0


class TestEccDimm:
    def test_roundtrip(self):
        dimm = EccDimm(seed=1)
        ws = words(2)
        dimm.write_line(0, 0, 0, ws)
        result = dimm.read_line(0, 0, 0)
        assert result.words == ws
        assert not result.corrected and not result.uncorrectable

    def test_corrects_single_bit_chip_fault(self):
        """A single stuck bit is within DIMM-level SECDED reach -- but
        with on-die ECC present the chip already fixed it, so turn the
        check bits into the interesting case: corrupt the *stored* data
        transiently with a 1-bit flip and disable nothing."""
        dimm = EccDimm(seed=2)
        ws = words(3)
        dimm.write_line(0, 1, 1, ws)
        # Flip one stored bit in chip 4 behind the on-die code's back is
        # not possible (the code re-encodes), so emulate the paper's
        # point instead: single-bit runtime faults never even reach the
        # DIMM code because on-die ECC corrects them.
        dimm.inject_chip_failure(
            chip=4, granularity=FaultGranularity.BIT,
            bank=0, row=1, column=1, bit=9,
        )
        result = dimm.read_line(0, 1, 1)
        assert result.words == ws
        assert not result.uncorrectable

    def test_chip_failure_defeats_secded(self):
        """The Figure-1 observation: a whole-chip (multi-bit-per-beat)
        failure is beyond the 9th chip's SECDED."""
        dimm = EccDimm(seed=3)
        ws = words(4)
        dimm.write_line(0, 0, 5, ws)
        dimm.inject_chip_failure(chip=2)
        result = dimm.read_line(0, 0, 5)
        assert result.uncorrectable or result.words != ws

    def test_wrong_word_count(self):
        with pytest.raises(ValueError):
            EccDimm(seed=4).write_line(0, 0, 0, [1] * 7)


class TestXedDimm:
    def test_parity_chip_holds_xor(self):
        dimm = XedDimm.build(seed=5)
        ws = words(5)
        dimm.write_line(1, 2, 3, ws)
        stored = [chip.read(1, 2, 3) for chip in dimm.chips]
        assert stored[:8] == ws
        assert stored[8] == xor_parity(ws)

    def test_chip_count(self):
        dimm = XedDimm.build()
        assert dimm.num_chips == 9
        assert dimm.PARITY_CHIP == 8

    def test_build_with_scaling(self):
        dimm = XedDimm.build(seed=1, scaling_ber=1e-4)
        assert dimm.chips[0].scaling_ber == 1e-4

    def test_chips_have_distinct_seeds(self):
        dimm = XedDimm.build(seed=9, scaling_ber=1e-2)
        weak0 = [dimm.chips[0].weak_bit(0, 0, c) for c in range(64)]
        weak1 = [dimm.chips[1].weak_bit(0, 0, c) for c in range(64)]
        assert weak0 != weak1

    def test_wrong_word_count(self):
        with pytest.raises(ValueError):
            XedDimm.build().write_line(0, 0, 0, [1] * 9)


class TestChipkillRank:
    def test_roundtrip(self):
        rank = ChipkillRank(seed=6)
        ws = words(6, 16)
        rank.write_line(0, 0, 0, ws)
        result = rank.read_line(0, 0, 0)
        assert result.words == ws and not result.corrected

    def test_single_chip_failure_corrected(self):
        rank = ChipkillRank(seed=7)
        ws = words(7, 16)
        rank.write_line(0, 3, 3, ws)
        rank.inject_chip_failure(chip=11)
        result = rank.read_line(0, 3, 3)
        assert result.words == ws
        assert result.corrected
        assert result.corrected_chips == [11]

    def test_check_chip_failure_corrected(self):
        rank = ChipkillRank(seed=8)
        ws = words(8, 16)
        rank.write_line(0, 0, 9, ws)
        rank.inject_chip_failure(chip=17)  # a check-symbol chip
        result = rank.read_line(0, 0, 9)
        assert result.words == ws

    def test_double_chip_failure_flagged_at_rank_level(self):
        """Two chips failing together: at least one of the 8 beat
        codewords must detect it (the cross-beat DSD argument)."""
        rank = ChipkillRank(seed=9)
        ws = words(9, 16)
        rank.write_line(0, 0, 0, ws)
        rank.inject_chip_failure(chip=3)
        rank.inject_chip_failure(chip=12, seed=1)
        result = rank.read_line(0, 0, 0)
        assert result.uncorrectable or result.words != ws

    def test_double_failure_recovered_with_xed_erasures(self):
        """Section IX: catch-words turn the two check symbols into two
        erasure correctors -> Double-Chipkill reliability on 18 chips."""
        rank = ChipkillRank(seed=10)
        ws = words(10, 16)
        rank.write_line(0, 1, 1, ws)
        rank.inject_chip_failure(chip=3)
        rank.inject_chip_failure(chip=12, seed=1)
        result = rank.read_line(0, 1, 1, erasures=[3, 12])
        assert result.words == ws
        assert not result.uncorrectable

    def test_double_chipkill_rank(self):
        rank = ChipkillRank(data_chips=32, check_chips=4, seed=11)
        ws = words(11, 32)
        rank.write_line(0, 0, 0, ws)
        rank.inject_chip_failure(chip=0)
        rank.inject_chip_failure(chip=20, seed=2)
        result = rank.read_line(0, 0, 0)
        assert result.words == ws  # corrects two chips outright

    def test_wrong_word_count(self):
        with pytest.raises(ValueError):
            ChipkillRank().write_line(0, 0, 0, [1] * 15)
