"""Unit tests for the DES engine, the power model and the runner."""

import pytest

from repro.perfsim.configs import SCHEME_CONFIGS
from repro.perfsim.engine import simulate_system
from repro.perfsim.power import (
    ON_DIE_ECC_CURRENT_SCALE,
    MicronIDD,
    PowerModel,
)
from repro.perfsim.runner import (
    format_figure_table,
    geometric_mean,
    normalized_metric,
    run_benchmark,
    run_suite,
)
from repro.perfsim.timing import SystemTiming
from repro.perfsim.workloads import workload_by_name

N = 15_000  # instructions per core: small but statistically stable


def sim(workload="stream", scheme="ecc_dimm", n=N, seed=3):
    return simulate_system(
        workload_by_name(workload), SCHEME_CONFIGS[scheme],
        instructions_per_core=n, seed=seed,
    )


class TestEngineBasics:
    def test_simulation_completes_and_counts(self):
        r = sim()
        assert r.exec_bus_cycles > 0
        assert r.reads > 0 and r.writes > 0
        assert len(r.core_finish_times) == 8
        assert r.channel_stats.reads_served == r.reads

    def test_deterministic(self):
        assert sim(seed=5).exec_bus_cycles == sim(seed=5).exec_bus_cycles

    def test_seed_changes_results(self):
        # Compare per-core finish vectors on a memory-bound workload;
        # a lightly-loaded run's retire-bound max can coincide.
        a = sim("libquantum", seed=1)
        b = sim("libquantum", seed=2)
        assert a.core_finish_times != b.core_finish_times

    def test_more_instructions_take_longer(self):
        assert sim(n=30_000).exec_bus_cycles > sim(n=10_000).exec_bus_cycles

    def test_memory_heavy_slower_than_light(self):
        heavy = sim("libquantum")
        light = sim("swapt")
        assert heavy.exec_bus_cycles > light.exec_bus_cycles
        assert heavy.ipc < light.ipc

    def test_exec_time_at_least_retire_bound(self):
        r = sim("swapt")
        # 8 cores x N instrs at 16 instr/bus-cycle is the ideal floor.
        assert r.exec_bus_cycles >= N / 16.0

    def test_row_hit_rate_tracks_workload_locality(self):
        streaming = sim("libquantum")
        chasing = sim("mcf")
        assert (
            streaming.channel_stats.row_hit_rate
            > chasing.channel_stats.row_hit_rate + 0.3
        )


class TestSchemeMechanisms:
    def test_xed_identical_to_baseline(self):
        assert sim(scheme="xed").exec_bus_cycles == pytest.approx(
            sim(scheme="ecc_dimm").exec_bus_cycles
        )

    def test_chipkill_slower_than_baseline(self):
        assert (
            sim("libquantum", "chipkill").exec_bus_cycles
            > 1.2 * sim("libquantum", "ecc_dimm").exec_bus_cycles
        )

    def test_double_chipkill_slower_than_chipkill(self):
        assert (
            sim("libquantum", "double_chipkill").exec_bus_cycles
            > sim("libquantum", "chipkill").exec_bus_cycles
        )

    def test_extra_transaction_doubles_read_traffic(self):
        r = sim(scheme="extra_txn_chipkill")
        assert r.companion_reads == r.reads
        assert r.channel_stats.reads_served == 2 * r.reads

    def test_lotecc_issues_companion_writes(self):
        r = sim("lbm", "lotecc")
        assert r.companion_writes == r.writes
        base = sim("lbm", "ecc_dimm")
        assert r.exec_bus_cycles >= base.exec_bus_cycles

    def test_extra_burst_stretches_execution(self):
        base = sim("libquantum", "ecc_dimm")
        burst = sim("libquantum", "extra_burst_chipkill")
        ratio = burst.exec_bus_cycles / base.exec_bus_cycles
        assert 1.0 < ratio < 1.35  # bounded by the +25% bus stretch

    def test_serial_mode_rare_and_cheap(self):
        base = sim("libquantum", "xed")
        scaled = sim("libquantum", "xed_scaling")
        assert scaled.serial_mode_entries <= max(
            5, 10 * 2e-5 * scaled.reads
        )
        overhead = scaled.exec_bus_cycles / base.exec_bus_cycles
        assert overhead < 1.001  # the paper's <0.01% claim

    def test_chipkill_doubles_activate_counter(self):
        base = sim("mcf", "ecc_dimm")
        ck = sim("mcf", "chipkill")
        per_access_base = base.channel_stats.activates / max(
            1, base.channel_stats.reads_served + base.channel_stats.writes_served
        )
        per_access_ck = ck.channel_stats.activates / max(
            1, ck.channel_stats.reads_served + ck.channel_stats.writes_served
        )
        assert per_access_ck > 1.6 * per_access_base


class TestPowerModel:
    def test_breakdown_components_positive_and_sum(self):
        r = sim()
        power = PowerModel().compute(r, SCHEME_CONFIGS["ecc_dimm"])
        parts = [power.background, power.activate, power.read_write,
                 power.refresh]
        assert all(p > 0 for p in parts)
        assert power.total == pytest.approx(sum(parts))

    def test_on_die_ecc_raises_background_by_12_5_percent(self):
        r = sim()
        model = PowerModel()
        with_ecc = model.compute(r, SCHEME_CONFIGS["ecc_dimm"])
        import dataclasses

        plain_cfg = dataclasses.replace(
            SCHEME_CONFIGS["ecc_dimm"], on_die_ecc=False
        )
        without = model.compute(r, plain_cfg)
        assert with_ecc.background / without.background == pytest.approx(
            ON_DIE_ECC_CURRENT_SCALE
        )

    def test_chipkill_power_below_baseline(self):
        base = run_benchmark("libquantum", "ecc_dimm", instructions_per_core=N)
        ck = run_benchmark("libquantum", "chipkill", instructions_per_core=N)
        assert ck.power.total < base.power.total

    def test_idd_defaults_sane(self):
        idd = MicronIDD()
        assert idd.idd4r > idd.idd3n > idd.idd2n

    def test_zero_length_run_rejected(self):
        r = sim()
        import dataclasses

        broken = dataclasses.replace(r, exec_bus_cycles=0.0)
        with pytest.raises(ValueError):
            PowerModel().compute(broken, SCHEME_CONFIGS["ecc_dimm"])

    def test_format_row(self):
        r = sim()
        text = PowerModel().compute(r, SCHEME_CONFIGS["ecc_dimm"]).format_row()
        assert "total" in text and "W" in text


class TestRunner:
    @pytest.fixture(scope="class")
    def grid(self):
        workloads = [workload_by_name(n) for n in ("stream", "gcc")]
        return run_suite(
            ("ecc_dimm", "xed", "chipkill"),
            workloads,
            instructions_per_core=10_000,
        )

    def test_grid_shape(self, grid):
        assert set(grid) == {"stream", "gcc"}
        assert set(grid["stream"]) == {"ecc_dimm", "xed", "chipkill"}

    def test_baseline_normalises_to_one(self, grid):
        norm = normalized_metric(grid, "ecc_dimm")
        assert all(v == pytest.approx(1.0) for v in norm.values())

    def test_power_metric(self, grid):
        norm = normalized_metric(grid, "chipkill", metric="power")
        assert all(0.5 < v < 1.5 for v in norm.values())

    def test_unknown_metric(self, grid):
        with pytest.raises(ValueError):
            normalized_metric(grid, "xed", metric="joy")

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_format_table_has_gmean_row(self, grid):
        text = format_figure_table(grid, ["xed", "chipkill"])
        assert "Gmean" in text and "stream" in text

    def test_run_benchmark_accepts_objects_and_names(self):
        by_name = run_benchmark("gcc", "xed", instructions_per_core=5_000)
        by_obj = run_benchmark(
            workload_by_name("gcc"), SCHEME_CONFIGS["xed"],
            instructions_per_core=5_000,
        )
        assert by_name.exec_bus_cycles == by_obj.exec_bus_cycles
