"""Unit tests for the Monte-Carlo sampler and driver."""

import numpy as np
import pytest

from repro.faultsim.fault_models import FailureMode, FitTable, ModeRate
from repro.faultsim.injector import FaultSampler
from repro.faultsim.schemes import EccDimmScheme, XedScheme
from repro.faultsim.simulator import (
    MonteCarloConfig,
    ReliabilityResult,
    simulate,
    simulate_many,
)
from repro.faultsim.schemes import FailureKind

HOURS = 7 * 24 * 365


def make_sampler(scheme=None, fit=None, scaling=0.0, scrub=None):
    return FaultSampler(
        scheme or XedScheme(),
        fit or FitTable(),
        HOURS,
        scaling_rate=scaling,
        scrub_hours=scrub,
    )


def draw_all_faults(sampler, num_systems=30000, seed=7):
    rng = np.random.default_rng(seed)
    counts = sampler.sample_counts(num_systems, rng)
    mask = counts >= 1
    idx = np.nonzero(mask)[0]
    faults = []
    for system in sampler.materialise(idx, counts[mask], rng):
        faults.extend(system.faults)
    return counts, faults


class TestFaultSampler:
    def test_lambda_matches_fit_table(self):
        sampler = make_sampler()
        expected = 66.1e-9 * HOURS * 72
        assert sampler.lam_per_system == pytest.approx(expected)

    def test_poisson_counts_have_right_mean(self):
        sampler = make_sampler()
        rng = np.random.default_rng(1)
        counts = sampler.sample_counts(200_000, rng)
        assert counts.mean() == pytest.approx(sampler.lam_per_system, rel=0.05)

    def test_fault_fields_in_range(self):
        sampler = make_sampler()
        _, faults = draw_all_faults(sampler)
        assert faults, "expected some faults at this population"
        for f in faults[:500]:
            assert 0 <= f.channel < 4
            assert 0 <= f.rank < 2
            assert 0 <= f.chip < 9
            assert 0.0 <= f.time_hours <= HOURS
            assert f.addr.value <= sampler.space.full_mask

    def test_mode_mix_roughly_matches_fit(self):
        sampler = make_sampler()
        _, faults = draw_all_faults(sampler, num_systems=60000)
        bit_share = sum(
            f.mode is FailureMode.SINGLE_BIT for f in faults
        ) / len(faults)
        assert bit_share == pytest.approx(32.8 / 66.1, abs=0.05)

    def test_multirank_fault_cloned_across_ranks(self):
        fit = FitTable({FailureMode.MULTI_RANK: ModeRate(0.0, 500.0)})
        sampler = make_sampler(fit=fit)
        _, faults = draw_all_faults(sampler, num_systems=5000)
        assert faults
        # Clones: every multi-rank event appears once per rank.
        ranks = {f.rank for f in faults}
        assert ranks == {0, 1}
        assert len(faults) % 2 == 0

    def test_no_promotion_without_scaling(self):
        sampler = make_sampler(scaling=0.0)
        _, faults = draw_all_faults(sampler)
        for f in faults:
            if f.mode is FailureMode.SINGLE_BIT:
                assert f.on_die_correctable

    def test_promotion_with_scaling(self):
        fit = FitTable({FailureMode.SINGLE_BIT: ModeRate(0.0, 2000.0)})
        sampler = make_sampler(fit=fit, scaling=0.05)  # huge, to observe
        _, faults = draw_all_faults(sampler, num_systems=3000)
        promoted = [f for f in faults if not f.on_die_correctable]
        assert promoted, "some bit faults must have been promoted"
        share = len(promoted) / len(faults)
        assert share == pytest.approx(
            sampler.scaling.promotion_probability, rel=0.25
        )

    def test_scrubbing_bounds_transients(self):
        sampler = make_sampler(scrub=24.0)
        _, faults = draw_all_faults(sampler)
        for f in faults:
            if f.permanent:
                assert f.end_hours == float("inf")
            else:
                assert f.end_hours == pytest.approx(f.time_hours + 24.0)


class TestSimulate:
    def test_deterministic_given_seed(self):
        cfg = MonteCarloConfig(num_systems=20_000, seed=5)
        a = simulate(EccDimmScheme(), cfg)
        b = simulate(EccDimmScheme(), cfg)
        assert a.failure_times_hours == b.failure_times_hours

    def test_different_seeds_differ(self):
        a = simulate(EccDimmScheme(), MonteCarloConfig(num_systems=20_000, seed=1))
        b = simulate(EccDimmScheme(), MonteCarloConfig(num_systems=20_000, seed=2))
        assert a.failures != b.failures or a.failure_times_hours != b.failure_times_hours

    def test_batching_statistically_equivalent(self):
        # Batching reshapes the RNG stream, so results differ in detail
        # but must agree statistically (overlapping Wilson intervals).
        cfg = MonteCarloConfig(num_systems=30_000, seed=9)
        whole = simulate(EccDimmScheme(), cfg)
        batched = simulate(EccDimmScheme(), cfg, batch_systems=7_000)
        lo_w, hi_w = whole.confidence_interval()
        lo_b, hi_b = batched.confidence_interval()
        assert lo_w <= hi_b and lo_b <= hi_w

    def test_curve_is_monotone_and_ends_at_total(self):
        cfg = MonteCarloConfig(num_systems=50_000, seed=3)
        result = simulate(EccDimmScheme(), cfg)
        curve = result.curve()
        probs = [p for _, p in curve]
        assert probs == sorted(probs)
        assert probs[-1] == pytest.approx(result.probability_of_failure)

    def test_confidence_interval_brackets_estimate(self):
        result = simulate(EccDimmScheme(), MonteCarloConfig(num_systems=30_000))
        lo, hi = result.confidence_interval()
        assert lo <= result.probability_of_failure <= hi

    def test_improvement_over(self):
        a = ReliabilityResult("a", 1000, 7, [1.0] * 10, [FailureKind.DUE] * 10)
        b = ReliabilityResult("b", 1000, 7, [1.0] * 100, [FailureKind.DUE] * 100)
        assert a.improvement_over(b) == pytest.approx(10.0)
        empty = ReliabilityResult("c", 1000, 7, [], [])
        assert empty.improvement_over(b) == float("inf")

    def test_simulate_many_keys_by_name(self):
        cfg = MonteCarloConfig(num_systems=5_000)
        out = simulate_many([EccDimmScheme(), XedScheme()], cfg)
        assert set(out) == {"ECC-DIMM (SECDED)", "XED (9 chips)"}

    def test_format_summary_mentions_counts(self):
        result = simulate(EccDimmScheme(), MonteCarloConfig(num_systems=10_000))
        text = result.format_summary()
        assert "P(fail,7y)" in text and "DUE" in text

    def test_mttf_of_first_fault_scheme_is_midlife(self):
        # First-fault failures arrive ~uniformly over the 7 years, so
        # the conditional MTTF sits near 3.5 years.
        result = simulate(
            EccDimmScheme(), MonteCarloConfig(num_systems=60_000, seed=4)
        )
        assert result.mean_time_to_failure_years() == pytest.approx(
            3.5, rel=0.07
        )

    def test_mttf_infinite_without_failures(self):
        empty = ReliabilityResult("x", 100, 7, [], [])
        assert empty.mean_time_to_failure_years() == float("inf")

    def test_years_to_failure_probability(self):
        result = simulate(
            EccDimmScheme(), MonteCarloConfig(num_systems=60_000, seed=4)
        )
        p_total = result.probability_of_failure
        mid = result.years_to_failure_probability(p_total / 2)
        assert 3.0 < mid < 4.0  # half the mass by mid-life
        assert result.years_to_failure_probability(0.99) == float("inf")
        with pytest.raises(ValueError):
            result.years_to_failure_probability(0.0)


class TestKindCountCaching:
    def test_counts_match_kind_lists(self):
        result = ReliabilityResult(
            "x", 100, 7, [1.0, 2.0, 3.0],
            [FailureKind.DUE, FailureKind.SDC, FailureKind.DUE],
        )
        assert result.due_count == 2
        assert result.sdc_count == 1
        # Second access hits the cache and must agree.
        assert (result.due_count, result.sdc_count) == (2, 1)

    def test_counts_after_merge(self):
        a = ReliabilityResult(
            "x", 100, 7, [1.0, 2.0], [FailureKind.DUE, FailureKind.SDC]
        )
        b = ReliabilityResult(
            "x", 100, 7, [3.0], [FailureKind.DUE]
        )
        # Prime both caches before merging.
        assert (a.due_count, b.due_count) == (1, 1)
        merged = ReliabilityResult.merge([a, b])
        assert merged.due_count == 2
        assert merged.sdc_count == 1
        assert merged.failures == 3

    def test_counts_refresh_after_append(self):
        result = ReliabilityResult("x", 100, 7, [1.0], [FailureKind.DUE])
        assert result.due_count == 1
        result.failure_times_hours.append(2.0)
        result.kinds.append(FailureKind.SDC)
        assert result.due_count == 1
        assert result.sdc_count == 1

    def test_cache_does_not_affect_equality(self):
        a = ReliabilityResult("x", 100, 7, [1.0], [FailureKind.DUE])
        b = ReliabilityResult("x", 100, 7, [1.0], [FailureKind.DUE])
        assert a.due_count == 1  # prime only one cache
        assert a == b


class TestEccBackendConfig:
    def test_config_default_backend(self):
        assert MonteCarloConfig().ecc_backend == "scalar"

    def test_sampler_validates_backend(self):
        with pytest.raises(ValueError):
            FaultSampler(
                XedScheme(), FitTable(), HOURS, ecc_backend="turbo"
            )

    def test_sampler_lane_profile_backend_invariant(self):
        scalar = make_sampler(EccDimmScheme()).secded_lane_profile(
            samples=2000
        )
        batched = FaultSampler(
            EccDimmScheme(), FitTable(), HOURS, ecc_backend="batched"
        ).secded_lane_profile(samples=2000)
        assert scalar == batched

    def test_simulate_results_backend_invariant(self):
        cfg_s = MonteCarloConfig(num_systems=30000, ecc_backend="scalar")
        cfg_b = MonteCarloConfig(num_systems=30000, ecc_backend="batched")
        rs = simulate(EccDimmScheme(), cfg_s)
        rb = simulate(EccDimmScheme(), cfg_b)
        assert rs.failure_times_hours == rb.failure_times_hours
        assert rs.kinds == rb.kinds

    def test_simulate_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            simulate(
                EccDimmScheme(),
                MonteCarloConfig(num_systems=100, ecc_backend="simd"),
            )
