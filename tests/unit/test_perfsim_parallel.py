"""Deterministic ordering of the perfsim grid across worker counts.

The load-bearing property: a (workload x scheme) grid yields
*byte-identical* merged results and the *same* observability trace
tree whether its cells run in-process (workers=1) or on a spawn pool
(workers=4), and whether the cells execute on the scalar or pipeline
engine.  Also covers the fault-tolerant path: a grid checkpointed via
a RuntimePolicy resumes to the identical payload.
"""

import json

import pytest

from repro.obs import OBS, span_records
from repro.perfsim.runner import run_suite
from repro.perfsim.workloads import workload_by_name

SCHEMES = ["ecc_dimm", "xed"]
WORKLOAD_NAMES = ["mcf", "libquantum"]
INSTRUCTIONS = 3000


@pytest.fixture(autouse=True)
def _clean_obs():
    was_enabled = OBS.enabled
    yield
    OBS.enabled = was_enabled
    OBS.progress_enabled = False
    OBS.reset()


def _grid_payload(grid):
    """Canonical JSON of every cell, in deterministic (cell) order."""
    doc = {
        workload: {key: run.to_payload() for key, run in sorted(row.items())}
        for workload, row in sorted(grid.items())
    }
    return json.dumps(doc, sort_keys=True)


def _run_grid(workers, backend="pipeline", trace=False):
    OBS.reset()
    if trace:
        OBS.enable()
    workloads = [workload_by_name(n) for n in WORKLOAD_NAMES]
    grid = run_suite(
        SCHEMES, workloads, instructions_per_core=INSTRUCTIONS,
        backend=backend, workers=workers,
    )
    records = OBS.trace.to_records() if trace else None
    return grid, records


def _normalise(records):
    """Strip timing/process fields so trees compare structurally."""
    tree = []
    for s in span_records(records):
        attrs = dict(s.get("attrs") or {})
        attrs.pop("workers", None)  # legitimate config difference
        tree.append(
            {
                "name": s["name"],
                "span_id": s["span_id"],
                "parent_id": s["parent_id"],
                "attrs": attrs,
            }
        )
    tree.sort(key=lambda s: s["span_id"])
    return tree


class TestWorkerCountInvariance:
    def test_merged_grid_byte_identical_one_vs_four_workers(self):
        grid_1, _ = _run_grid(workers=1)
        grid_4, _ = _run_grid(workers=4)
        assert _grid_payload(grid_1) == _grid_payload(grid_4)

    def test_trace_tree_identical_one_vs_four_workers(self):
        grid_1, records_1 = _run_grid(workers=1, trace=True)
        grid_4, records_4 = _run_grid(workers=4, trace=True)
        assert _grid_payload(grid_1) == _grid_payload(grid_4)
        assert _normalise(records_1) == _normalise(records_4)
        # One cell per shard, in plan order under the suite root.
        shard_ids = [
            s["span_id"] for s in _normalise(records_1)
            if s["name"] == "shard_s"
        ]
        assert shard_ids == ["0.s0", "0.s1", "0.s2", "0.s3"]
        roots = [
            s for s in span_records(records_4) if s["parent_id"] is None
        ]
        assert len(roots) == 1
        assert roots[0]["name"] == "perfsim.suite"

    def test_backends_merge_to_identical_grids(self):
        scalar, _ = _run_grid(workers=1, backend="scalar")
        pipeline, _ = _run_grid(workers=4, backend="pipeline")
        assert _grid_payload(scalar) == _grid_payload(pipeline)


class TestResilientGrid:
    def test_checkpointed_grid_resumes_to_identical_payload(self, tmp_path):
        from repro.runtime import RuntimePolicy

        store = str(tmp_path / "ckpt")
        baseline, _ = _run_grid(workers=1)
        fresh, _ = _run_grid_with_policy(
            RuntimePolicy(checkpoint_dir=store), workers=2
        )
        assert _grid_payload(fresh) == _grid_payload(baseline)
        # Second run resumes from the checkpoints (decode path) and must
        # reproduce the identical grid.
        resumed, _ = _run_grid_with_policy(
            RuntimePolicy(resume_dir=store), workers=2
        )
        assert _grid_payload(resumed) == _grid_payload(baseline)


def _run_grid_with_policy(policy, workers):
    OBS.reset()
    workloads = [workload_by_name(n) for n in WORKLOAD_NAMES]
    grid = run_suite(
        SCHEMES, workloads, instructions_per_core=INSTRUCTIONS,
        backend="pipeline", workers=workers, runtime=policy,
    )
    return grid, None
