"""Unit tests for GF(2^m) arithmetic: the algebra under Chipkill."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.gf import GF16, GF256, GF2m, PRIMITIVE_POLYNOMIALS

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestConstruction:
    def test_known_field_sizes(self):
        for m in (2, 3, 4, 8):
            gf = GF2m(m)
            assert gf.size == 1 << m
            assert gf.order == (1 << m) - 1

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            GF2m(1)
        with pytest.raises(ValueError):
            GF2m(17)

    def test_rejects_non_primitive_polynomial(self):
        # x^8 + 1 = (x+1)^8 over GF(2): maximally non-primitive.
        with pytest.raises(ValueError):
            GF2m(8, primitive_poly=0x101)

    def test_exp_log_are_inverse_bijections(self):
        gf = GF256
        seen = set()
        for i in range(gf.order):
            x = gf.alpha_pow(i)
            assert gf.log(x) == i
            seen.add(x)
        assert len(seen) == gf.order

    def test_all_registered_polynomials_are_primitive(self):
        for m in PRIMITIVE_POLYNOMIALS:
            if m <= 12:  # keep the test fast
                GF2m(m)  # constructor raises if not primitive


class TestFieldAxioms:
    @given(a=elements, b=elements)
    def test_addition_is_xor_and_self_inverse(self, a, b):
        gf = GF256
        assert gf.add(a, b) == a ^ b
        assert gf.add(gf.add(a, b), b) == a

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=200)
    def test_multiplication_associative(self, a, b, c):
        gf = GF256
        assert gf.mul(gf.mul(a, b), c) == gf.mul(a, gf.mul(b, c))

    @given(a=elements, b=elements)
    def test_multiplication_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=200)
    def test_distributive(self, a, b, c):
        gf = GF256
        assert gf.mul(a, gf.add(b, c)) == gf.add(gf.mul(a, b), gf.mul(a, c))

    @given(a=nonzero)
    def test_multiplicative_inverse(self, a):
        gf = GF256
        assert gf.mul(a, gf.inv(a)) == 1

    @given(a=elements)
    def test_identities(self, a):
        gf = GF256
        assert gf.mul(a, 1) == a
        assert gf.mul(a, 0) == 0
        assert gf.add(a, 0) == a

    @given(a=nonzero, b=nonzero)
    def test_division_inverts_multiplication(self, a, b):
        gf = GF256
        assert gf.div(gf.mul(a, b), b) == a

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(5, 0)
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    @given(a=nonzero, n=st.integers(min_value=-10, max_value=10))
    def test_pow_matches_repeated_multiplication(self, a, n):
        gf = GF256
        expected = 1
        for _ in range(abs(n)):
            expected = gf.mul(expected, a)
        if n < 0:
            expected = gf.inv(expected)
        assert gf.pow(a, n) == expected

    def test_pow_zero_cases(self):
        assert GF256.pow(0, 0) == 1
        assert GF256.pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            GF256.pow(0, -1)

    def test_known_product_in_default_field(self):
        # In GF(2^8)/0x11D: x^7 * x = x^8 = 0x1D (the reduction itself).
        assert GF256.mul(0x80, 0x02) == 0x1D

    def test_rejects_irreducible_but_not_primitive(self):
        # AES's 0x11B is irreducible yet x is not a generator (order 51):
        # log/exp-table arithmetic would be silently wrong, so the
        # constructor must refuse it.
        with pytest.raises(ValueError):
            GF2m(8, primitive_poly=0x11B)

    def test_alpha_is_two_in_default_field(self):
        assert GF256.alpha_pow(1) == 2
        assert GF256.alpha_pow(0) == 1


poly = st.lists(elements, min_size=1, max_size=8)


class TestPolynomials:
    @given(p=poly, q=poly)
    def test_poly_add_commutative(self, p, q):
        gf = GF256
        assert gf.poly_add(p, q) == gf.poly_add(q, p)

    @given(p=poly, q=poly, x=elements)
    @settings(max_examples=150)
    def test_poly_mul_matches_eval(self, p, q, x):
        gf = GF256
        lhs = gf.poly_eval(gf.poly_mul(p, q), x)
        rhs = gf.mul(gf.poly_eval(p, x), gf.poly_eval(q, x))
        assert lhs == rhs

    @given(num=poly, den=poly)
    @settings(max_examples=150)
    def test_divmod_reconstructs(self, num, den):
        gf = GF256
        if all(c == 0 for c in den):
            with pytest.raises(ZeroDivisionError):
                gf.poly_divmod(num, den)
            return
        quot, rem = gf.poly_divmod(num, den)
        recon = gf.poly_add(gf.poly_mul(quot, den), rem)
        # Compare as polynomials (strip trailing zeros).
        def norm(p):
            p = list(p)
            while p and p[-1] == 0:
                p.pop()
            return p
        assert norm(recon) == norm(num)

    def test_poly_eval_horner(self):
        gf = GF256
        # p(x) = 3 + 2x + x^2 at x = 2: 3 ^ (2*2) ^ (2^2=4) = 3^4^4 = 3
        assert gf.poly_eval([3, 2, 1], 2) == 3

    def test_poly_deriv_char2(self):
        # d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in characteristic 2.
        assert GF256.poly_deriv([5, 7, 9, 11]) == [7, 0, 11]

    def test_gf16_small_field(self):
        for a in range(1, 16):
            assert GF16.mul(a, GF16.inv(a)) == 1


class TestEdgeCases:
    """Boundary behaviour the Reed-Solomon and batched layers lean on."""

    def test_alpha_pow_wraps_at_group_order(self):
        gf = GF256
        # alpha^order == alpha^0 == 1; exponents reduce mod 255.
        assert gf.alpha_pow(gf.order) == 1
        assert gf.alpha_pow(gf.order + 1) == gf.alpha_pow(1)
        assert gf.alpha_pow(7 * gf.order + 13) == gf.alpha_pow(13)
        assert gf.alpha_pow(-1) == gf.alpha_pow(gf.order - 1)

    def test_inverse_of_one_is_one(self):
        assert GF256.inv(1) == 1
        assert GF16.inv(1) == 1

    def test_inverse_of_order_boundary_element(self):
        gf = GF256
        # alpha^(order-1) is the last distinct power; its inverse is alpha.
        last = gf.alpha_pow(gf.order - 1)
        assert gf.mul(last, gf.alpha_pow(1)) == 1
        assert gf.inv(last) == gf.alpha_pow(1)

    def test_division_by_zero_raises_everywhere(self):
        for gf in (GF256, GF16):
            with pytest.raises(ZeroDivisionError):
                gf.div(1, 0)
            with pytest.raises(ZeroDivisionError):
                gf.div(0, 0)
            with pytest.raises(ZeroDivisionError):
                gf.inv(0)

    def test_log_of_zero_raises(self):
        with pytest.raises(ValueError):
            GF256.log(0)

    def test_gf2_16_construction(self):
        gf = GF2m(16)
        assert gf.size == 1 << 16
        assert gf.order == (1 << 16) - 1
        assert gf.alpha_pow(0) == 1
        assert gf.alpha_pow(gf.order) == 1
        # Spot-check inverses across the large field.
        for a in (1, 2, 0x8000, 0xFFFF, 0x1234):
            assert gf.mul(a, gf.inv(a)) == 1

    def test_rejects_m_above_16(self):
        with pytest.raises(ValueError):
            GF2m(17)


class TestNumpyTableExports:
    """The log/antilog arrays the batched RS kernels gather from."""

    def test_exp_table_matches_alpha_pow(self):
        gf = GF256
        table = gf.exp_table
        assert table.shape == (gf.order,)
        for i in (0, 1, 100, gf.order - 1):
            assert int(table[i]) == gf.alpha_pow(i)

    def test_log_table_matches_log_for_nonzero(self):
        gf = GF256
        table = gf.log_table
        assert table.shape == (gf.size,)
        for a in (1, 2, 0x80, 0xFF):
            assert int(table[a]) == gf.log(a)

    def test_tables_are_cached_and_read_only(self):
        gf = GF2m(4)
        assert gf.exp_table is gf.exp_table
        assert gf.log_table is gf.log_table
        with pytest.raises(ValueError):
            gf.exp_table[0] = 99
        with pytest.raises(ValueError):
            gf.log_table[1] = 99
