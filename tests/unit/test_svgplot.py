"""Unit tests for the dependency-free SVG chart renderer."""

import pytest

from repro.analysis import run_experiment
from repro.analysis.svgplot import (
    bar_chart_svg,
    line_chart_svg,
    plot_performance_figure,
    plot_reliability_figure,
)


class TestLineChart:
    def test_valid_svg_with_series(self):
        svg = line_chart_svg(
            {"A": [(1, 1e-3), (2, 2e-3)], "B": [(1, 1e-5), (2, 4e-5)]},
            "Test chart",
        )
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "Test chart" in svg
        assert svg.count("<path") == 2
        assert "1e-3" in svg or "1e-" in svg  # log ticks rendered

    def test_zero_values_dropped_in_log_mode(self):
        svg = line_chart_svg({"A": [(1, 0.0), (2, 1e-4), (3, 2e-4)]}, "t")
        assert svg.count("<path") == 1

    def test_all_zero_series_rejected(self):
        with pytest.raises(ValueError):
            line_chart_svg({"A": [(1, 0.0)]}, "t")

    def test_linear_mode(self):
        svg = line_chart_svg(
            {"A": [(0, 0.0), (1, 0.5), (2, 1.0)]}, "t", log_y=False
        )
        assert "<path" in svg

    def test_title_escaped(self):
        svg = line_chart_svg({"A": [(1, 0.5)]}, "a<b&c", log_y=False)
        assert "a&lt;b&amp;c" in svg


class TestBarChart:
    def test_groups_and_baseline(self):
        svg = bar_chart_svg(
            {"wl1": {"ck": 1.2, "dck": 1.8}, "wl2": {"ck": 1.1, "dck": 1.5}},
            "Bars",
        )
        assert svg.count("<rect") >= 5  # background + 4 bars + legends
        assert "stroke-dasharray" in svg  # the baseline rule

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart_svg({}, "t")


class TestFigurePlotters:
    def test_reliability_figure(self, tmp_path):
        report = run_experiment("fig7", scale="quick")
        out = plot_reliability_figure(report, tmp_path / "fig7.svg")
        content = out.read_text()
        assert content.startswith("<svg")
        assert "XED (9 chips)" in content

    def test_performance_figure(self, tmp_path):
        report = run_experiment("fig11", scale="quick")
        out = plot_performance_figure(report, tmp_path / "fig11.svg")
        content = out.read_text()
        assert "Normalized Execution Time" in content
        assert "libquantum" in content

    def test_wrong_report_kind_rejected(self, tmp_path):
        report = run_experiment("table3", scale="quick")
        with pytest.raises(ValueError):
            plot_reliability_figure(report, tmp_path / "x.svg")
        with pytest.raises(ValueError):
            plot_performance_figure(report, tmp_path / "x.svg")
