"""Unit tests for timing presets and controller page policies."""

import pytest

from repro.perfsim.configs import ECC_DIMM
from repro.perfsim.dramsys import Channel
from repro.perfsim.engine import simulate_system
from repro.perfsim.requests import MemoryRequest, RequestType
from repro.perfsim.timing import DDR4_2400, LPDDR4_3200, DDR3Timing, SystemTiming
from repro.perfsim.workloads import workload_by_name


class TestPresets:
    def test_ddr4_internal_consistency(self):
        assert DDR4_2400.tRC == DDR4_2400.tRAS + DDR4_2400.tRP
        assert DDR4_2400.tCK_ns < DDR3Timing().tCK_ns  # faster clock

    def test_lpddr4_internal_consistency(self):
        assert LPDDR4_3200.tRC == LPDDR4_3200.tRAS + LPDDR4_3200.tRP
        assert LPDDR4_3200.tBURST == 8  # BL16

    def test_absolute_latencies_comparable(self):
        # Core latencies in nanoseconds stay in the familiar DRAM range
        # across standards (the cycle counts grow as clocks speed up).
        for timing in (DDR3Timing(), DDR4_2400, LPDDR4_3200):
            trcd_ns = timing.tRCD * timing.tCK_ns
            assert 10.0 < trcd_ns < 25.0

    def test_system_accepts_presets(self):
        system = SystemTiming(ddr=DDR4_2400)
        assert system.ddr.tCAS == 17


def _one_access(system, row, column, now=0.0, arrival=0.0):
    channel = Channel(system, ECC_DIMM, logical_ranks=2)
    req = MemoryRequest(
        req_type=RequestType.READ, core=0, channel=0, rank=0, bank=0,
        row=row, column=column, arrival=arrival,
    )
    channel.push(req)
    completed, _ = channel.pump(now)
    return channel, completed[0][1]


class TestPagePolicies:
    def test_open_page_allows_row_hits(self):
        system = SystemTiming(page_policy="open")
        channel, first = _one_access(system, row=5, column=0)
        req = MemoryRequest(
            req_type=RequestType.READ, core=0, channel=0, rank=0, bank=0,
            row=5, column=1, arrival=first,
        )
        channel.push(req)
        channel.pump(first)
        assert channel.stats.row_hits == 1

    def test_closed_page_never_hits(self):
        system = SystemTiming(page_policy="closed")
        channel, first = _one_access(system, row=5, column=0)
        req = MemoryRequest(
            req_type=RequestType.READ, core=0, channel=0, rank=0, bank=0,
            row=5, column=1, arrival=first,
        )
        channel.push(req)
        channel.pump(first)
        assert channel.stats.row_hits == 0
        assert channel.stats.row_misses == 2

    def test_closed_page_slower_on_streaming(self):
        w = workload_by_name("libquantum")
        open_run = simulate_system(
            w, ECC_DIMM, SystemTiming(page_policy="open"),
            instructions_per_core=10_000,
        )
        closed_run = simulate_system(
            w, ECC_DIMM, SystemTiming(page_policy="closed"),
            instructions_per_core=10_000,
        )
        assert closed_run.exec_bus_cycles > open_run.exec_bus_cycles

    def test_ddr4_faster_wall_clock_on_bandwidth_bound(self):
        w = workload_by_name("libquantum")
        ddr3 = simulate_system(
            w, ECC_DIMM, SystemTiming(), instructions_per_core=10_000
        )
        ddr4 = simulate_system(
            w, ECC_DIMM, SystemTiming(ddr=DDR4_2400),
            instructions_per_core=10_000,
        )
        # Same bus-cycle budget per burst but a 1.5x faster clock: the
        # wall-clock execution time must improve.
        assert ddr4.bus_cycle_ns == pytest.approx(DDR4_2400.tCK_ns)
        assert ddr3.bus_cycle_ns == pytest.approx(1.25)
        assert ddr4.exec_seconds < ddr3.exec_seconds
