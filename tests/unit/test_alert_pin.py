"""Unit tests for the ALERT_n exposure variant (Section XI-C)."""

import pytest

from repro.core.alert_pin import AlertEvent, AlertPinXedController
from repro.core.controller import XedController
from repro.core.types import ReadStatus
from repro.dram import XedDimm
from repro.dram.chip import FaultGranularity

LINE = [0x5150 + i for i in range(8)]


def system(seed=1, ident_bits=4):
    dimm = XedDimm.build(seed=seed)
    ctrl = AlertPinXedController(dimm, ident_bits=ident_bits)
    return dimm, ctrl


class TestConstruction:
    def test_data_path_left_untouched(self):
        dimm, _ = system(1)
        assert all(not chip.regs.xed_enable for chip in dimm.chips)

    def test_rejects_unsupported_width(self):
        with pytest.raises(ValueError):
            AlertPinXedController(XedDimm.build(), ident_bits=2)

    def test_event_value_type(self):
        event = AlertEvent(asserted=True, chip=3)
        assert event.asserted and event.chip == 3


class TestExtendedPin:
    def test_clean_read(self):
        _, ctrl = system(2)
        ctrl.write_line(0, 0, 0, LINE)
        result = ctrl.read_line(0, 0, 0)
        assert result.status is ReadStatus.CLEAN and result.words == LINE

    def test_single_bit_fault_absorbed_silently(self):
        dimm, ctrl = system(3)
        ctrl.write_line(0, 0, 1, LINE)
        dimm.inject_chip_failure(
            chip=2, granularity=FaultGranularity.BIT,
            bank=0, row=0, column=1, bit=5,
        )
        result = ctrl.read_line(0, 0, 1)
        # On-die corrected data flows; parity consistent; alert counted.
        assert result.status is ReadStatus.CLEAN
        assert result.words == LINE
        assert ctrl.stats["alerts"] == 1

    @pytest.mark.parametrize("granularity", [
        FaultGranularity.WORD, FaultGranularity.ROW,
        FaultGranularity.BANK, FaultGranularity.CHIP,
    ])
    def test_chip_failures_corrected_via_identity(self, granularity):
        dimm, ctrl = system(4)
        ctrl.write_line(0, 3, 7, LINE)
        dimm.inject_chip_failure(
            chip=6, granularity=granularity, bank=0, row=3, column=7,
        )
        result = ctrl.read_line(0, 3, 7)
        assert result.ok and result.words == LINE
        assert result.reconstructed_chip == 6 or result.status in (
            ReadStatus.CORRECTED_ERASURE, ReadStatus.CORRECTED_DIAGNOSED
        )

    def test_equivalent_to_catch_word_xed(self):
        """Section XI-C's claim: an identity-carrying ALERT_n implements
        XED -- same corrections, same data, for the same fault."""
        for chip_idx in (0, 4, 8):
            dimm_a = XedDimm.build(seed=50 + chip_idx)
            dimm_b = XedDimm.build(seed=50 + chip_idx)
            alert = AlertPinXedController(dimm_a)
            cw = XedController(dimm_b, seed=9)
            alert.write_line(0, 0, 0, LINE)
            cw.write_line(0, 0, 0, LINE)
            dimm_a.inject_chip_failure(chip=chip_idx)
            dimm_b.inject_chip_failure(chip=chip_idx)
            res_a = alert.read_line(0, 0, 0)
            res_b = cw.read_line(0, 0, 0)
            assert res_a.ok and res_b.ok
            assert res_a.words == res_b.words == LINE


class TestPlainDdr4Pin:
    def test_shared_pin_needs_diagnosis(self):
        """ident_bits=0: the pin says 'someone erred' but not who --
        the controller must diagnose, exactly the paper's objection."""
        dimm, ctrl = system(5, ident_bits=0)
        for col in range(128):
            ctrl.write_line(0, 8, col, LINE)
        dimm.inject_chip_failure(
            chip=3, granularity=FaultGranularity.ROW, bank=0, row=8,
        )
        result = ctrl.read_line(0, 8, 0)
        assert result.ok and result.words == LINE
        assert result.status is ReadStatus.CORRECTED_DIAGNOSED
        assert ctrl.stats["diagnoses"] == 1

    def test_probe_restores_alert_mode(self):
        dimm, ctrl = system(6, ident_bits=0)
        for col in range(128):
            ctrl.write_line(0, 9, col, LINE)
        dimm.inject_chip_failure(
            chip=1, granularity=FaultGranularity.ROW, bank=0, row=9,
        )
        ctrl.read_line(0, 9, 0)
        assert all(not chip.regs.xed_enable for chip in dimm.chips)

    def test_undiagnosable_is_due(self):
        dimm, ctrl = system(7, ident_bits=0)
        ctrl.write_line(0, 0, 0, LINE)
        # Transient word fault: invisible to both diagnoses once the
        # alert has fired -- must surface as DUE, not silence.
        dimm.inject_chip_failure(
            chip=5, granularity=FaultGranularity.WORD, permanent=False,
            bank=0, row=0, column=0,
        )
        result = ctrl.read_line(0, 0, 0)
        assert result.status is ReadStatus.DUE
