"""The perf-regression ledger comparator (tools/bench_snapshot.py).

The acceptance property: a simulated >30% regression on a ratio
metric MUST fail the comparison, while jitter inside the band and
purely-informational wall metrics must not.  The comparator is pure
(snapshot dict in, verdict out), so no timing runs here.
"""

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "bench_snapshot.py"
_spec = importlib.util.spec_from_file_location("bench_snapshot", _TOOL)
bench_snapshot = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_snapshot", bench_snapshot)
_spec.loader.exec_module(bench_snapshot)


def _snapshot(**overrides):
    metrics = {
        "ecc.batched_speedup": {
            "value": 20.0, "cls": "ratio", "better": "higher",
        },
        "faultsim.vectorized_speedup": {
            "value": 5.0, "cls": "ratio", "better": "higher",
        },
        "faultsim.scalar_s": {
            "value": 0.10, "cls": "wall", "better": "lower",
        },
    }
    for name, value in overrides.items():
        metrics[name] = dict(metrics[name], value=value)
    return {"kind": "bench_snapshot", "version": 1, "metrics": metrics}


class TestComparator:
    def test_clean_comparison_passes(self):
        base = _snapshot()
        _, regressions = bench_snapshot.compare_snapshots(
            base, copy.deepcopy(base)
        )
        assert regressions == []

    def test_simulated_35_percent_regression_fails(self):
        """The acceptance case: >30% speedup loss must be flagged."""
        base = _snapshot()
        bad = _snapshot(**{"faultsim.vectorized_speedup": 5.0 * 0.65})
        lines, regressions = bench_snapshot.compare_snapshots(
            base, bad, tolerance=0.30
        )
        assert regressions == ["faultsim.vectorized_speedup"]
        assert any("REGRESSION" in line for line in lines)

    def test_jitter_inside_the_band_passes(self):
        base = _snapshot()
        wobbly = _snapshot(**{"faultsim.vectorized_speedup": 5.0 * 0.75})
        _, regressions = bench_snapshot.compare_snapshots(
            base, wobbly, tolerance=0.30
        )
        assert regressions == []

    def test_speedup_improvement_never_flags(self):
        base = _snapshot()
        faster = _snapshot(**{"ecc.batched_speedup": 100.0})
        _, regressions = bench_snapshot.compare_snapshots(base, faster)
        assert regressions == []

    def test_wall_metrics_informational_by_default(self):
        base = _snapshot()
        slower = _snapshot(**{"faultsim.scalar_s": 10.0})  # 100x slower
        _, regressions = bench_snapshot.compare_snapshots(base, slower)
        assert regressions == []

    def test_wall_metrics_gated_under_include_wall(self):
        base = _snapshot()
        slower = _snapshot(**{"faultsim.scalar_s": 0.20})
        _, regressions = bench_snapshot.compare_snapshots(
            base, slower, tolerance=0.30, include_wall=True
        )
        assert regressions == ["faultsim.scalar_s"]

    def test_new_and_dropped_metrics_reported_not_flagged(self):
        base = _snapshot()
        cur = _snapshot()
        cur["metrics"]["brand.new_speedup"] = {
            "value": 1.0, "cls": "ratio", "better": "higher",
        }
        del cur["metrics"]["ecc.batched_speedup"]
        lines, regressions = bench_snapshot.compare_snapshots(base, cur)
        assert regressions == []
        assert any("new metric" in line for line in lines)
        assert any("dropped from current" in line for line in lines)


class TestSnapshotEnvelope:
    def test_make_snapshot_shape(self):
        snap = bench_snapshot.make_snapshot(
            {"m": {"value": 1.0, "cls": "ratio", "better": "higher"}}
        )
        assert snap["kind"] == "bench_snapshot"
        assert snap["version"] == bench_snapshot.SNAPSHOT_VERSION
        assert len(snap["stamp"]) == 8 and snap["stamp"].isdigit()
        assert "python" in snap["host"]

    def test_find_latest_snapshot_orders_by_stamp(self, tmp_path):
        for stamp in ("20250101", "20260807", "20251231"):
            (tmp_path / f"BENCH_{stamp}.json").write_text("{}")
        latest = bench_snapshot.find_latest_snapshot(tmp_path)
        assert latest.name == "BENCH_20260807.json"

    def test_find_latest_snapshot_empty_dir(self, tmp_path):
        assert bench_snapshot.find_latest_snapshot(tmp_path) is None

    def test_committed_snapshot_exists_and_parses(self):
        """The ledger ships at least one committed baseline."""
        latest = bench_snapshot.find_latest_snapshot()
        assert latest is not None, "no BENCH_*.json committed"
        snap = json.loads(latest.read_text())
        assert snap["kind"] == "bench_snapshot"
        ratio_metrics = [
            name for name, m in snap["metrics"].items()
            if m["cls"] == "ratio"
        ]
        assert ratio_metrics, "baseline has no machine-portable metrics"


class TestCompareCli:
    def test_compare_against_self_passes(self, tmp_path, monkeypatch):
        """`compare --baseline <self-recorded>` must exit 0."""
        snap = _snapshot()
        path = tmp_path / "BENCH_20260808.json"
        path.write_text(json.dumps(snap))
        monkeypatch.setattr(
            bench_snapshot, "collect_metrics",
            lambda: copy.deepcopy(snap["metrics"]),
        )
        code = bench_snapshot.main(["compare", "--baseline", str(path)])
        assert code == 0

    def test_compare_regression_exits_one(self, tmp_path, monkeypatch, capsys):
        snap = _snapshot()
        path = tmp_path / "BENCH_20260808.json"
        path.write_text(json.dumps(snap))
        bad = _snapshot(**{"ecc.batched_speedup": 1.0})
        monkeypatch.setattr(
            bench_snapshot, "collect_metrics", lambda: bad["metrics"]
        )
        code = bench_snapshot.main(["compare", "--baseline", str(path)])
        assert code == 1
        assert "regressed beyond" in capsys.readouterr().out

    def test_compare_unreadable_baseline_exits_two(self, tmp_path):
        code = bench_snapshot.main(
            ["compare", "--baseline", str(tmp_path / "absent.json")]
        )
        assert code == 2
