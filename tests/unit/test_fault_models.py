"""Unit tests for Table-I FIT rates and fault-mode semantics."""

import pytest

from repro.faultsim.fault_models import (
    DEFAULT_SCALING_FAULT_RATE,
    DRAM_FIT_RATES,
    HOURS_PER_YEAR,
    LIFETIME_HOURS,
    ON_DIE_MISS_PROBABILITY,
    FailureMode,
    FitTable,
    ModeRate,
)


class TestTableIValues:
    def test_exact_paper_rates(self):
        assert DRAM_FIT_RATES[FailureMode.SINGLE_BIT] == ModeRate(14.2, 18.6)
        assert DRAM_FIT_RATES[FailureMode.SINGLE_WORD] == ModeRate(1.4, 0.3)
        assert DRAM_FIT_RATES[FailureMode.SINGLE_COLUMN] == ModeRate(1.4, 5.6)
        assert DRAM_FIT_RATES[FailureMode.SINGLE_ROW] == ModeRate(0.2, 8.2)
        assert DRAM_FIT_RATES[FailureMode.SINGLE_BANK] == ModeRate(0.8, 10.0)
        assert DRAM_FIT_RATES[FailureMode.MULTI_BANK] == ModeRate(0.3, 1.4)
        assert DRAM_FIT_RATES[FailureMode.MULTI_RANK] == ModeRate(0.9, 2.8)

    def test_constants(self):
        assert DEFAULT_SCALING_FAULT_RATE == 1e-4
        assert ON_DIE_MISS_PROBABILITY == 0.008
        assert LIFETIME_HOURS == 7 * HOURS_PER_YEAR

    def test_only_bit_faults_on_die_correctable(self):
        correctable = {m for m in FailureMode if m.on_die_correctable}
        assert correctable == {FailureMode.SINGLE_BIT}

    def test_multi_rank_spans_ranks(self):
        assert FailureMode.MULTI_RANK.spans_ranks
        assert not FailureMode.SINGLE_BANK.spans_ranks


class TestFitTable:
    def test_totals(self):
        fit = FitTable()
        assert fit.total_fit == pytest.approx(66.1)
        assert fit.uncorrectable_by_on_die_fit == pytest.approx(33.3)

    def test_word_fault_due_exposure_matches_paper(self):
        """The 7.7e-4 transient-word exposure behind Table IV."""
        fit = FitTable()
        rate = fit.rate_of(FailureMode.SINGLE_WORD, permanent=False)
        exposure = rate * 1e-9 * 9 * LIFETIME_HOURS
        assert exposure == pytest.approx(7.7e-4, rel=0.02)

    def test_faults_per_chip(self):
        fit = FitTable()
        expected = 66.1e-9 * LIFETIME_HOURS
        assert fit.faults_per_chip(LIFETIME_HOURS) == pytest.approx(expected)

    def test_mode_weights_sum_to_one(self):
        weights = FitTable().mode_weights()
        assert sum(w for _, _, w in weights) == pytest.approx(1.0)
        assert len(weights) == 14  # 7 modes x {transient, permanent}

    def test_scaled(self):
        doubled = FitTable().scaled(2.0)
        assert doubled.total_fit == pytest.approx(2 * 66.1)

    def test_with_mode_replaces_one_entry(self):
        fit = FitTable().with_mode(FailureMode.SINGLE_BIT, ModeRate(0.0, 0.0))
        assert fit.rate_of(FailureMode.SINGLE_BIT) == 0.0
        assert fit.rate_of(FailureMode.SINGLE_ROW) == pytest.approx(8.4)
        # Original untouched (value semantics).
        assert FitTable().rate_of(FailureMode.SINGLE_BIT) == pytest.approx(32.8)

    def test_rate_of_permanence_split(self):
        fit = FitTable()
        assert fit.rate_of(FailureMode.SINGLE_ROW, permanent=True) == 8.2
        assert fit.rate_of(FailureMode.SINGLE_ROW, permanent=False) == 0.2
