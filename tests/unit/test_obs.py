"""Unit tests for the observability layer (repro.obs)."""

import io
import json
import math

import pytest

from repro.obs import (
    OBS,
    CatchWordDetected,
    Counter,
    EventTrace,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProgressReporter,
    ReadClassified,
    ScrubPass,
    Timer,
    configure,
    events,
    read_jsonl,
    span,
    timed,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Leave the global switchboard untouched by each test."""
    was_enabled = OBS.enabled
    capacity = OBS.trace.capacity
    yield
    OBS.enabled = was_enabled
    OBS.progress_enabled = False
    if OBS.trace.capacity != capacity:
        OBS.trace = EventTrace(capacity=capacity)
    OBS.reset()


class TestCounter:
    def test_inc_and_reset(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_add(self):
        g = Gauge("g")
        g.set(2.5)
        g.add(-1.0)
        assert g.value == pytest.approx(1.5)


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        # <=1: 0.5 and 1.0; <=10: 5.0; <=100: 50.0; +Inf: 500.0
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.mean == pytest.approx(556.5 / 5)
        assert h.min == 0.5 and h.max == 500.0

    def test_to_dict_labels(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        h.observe(3.0)
        d = h.to_dict()
        assert d["buckets"] == {"le=1": 0, "le=10": 1, "le=+Inf": 0}
        assert d["count"] == 1

    def test_empty_stats(self):
        d = Histogram("h", buckets=(1.0,)).to_dict()
        assert d["min"] is None and d["max"] is None and d["mean"] == 0.0

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        reg.counter("a").inc()
        assert reg.snapshot()["counters"]["a"] == 1

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.timer("t").observe(0.01)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["timers"]["t"]["count"] == 1
        # Must be JSON-serialisable as-is (the --metrics-out contract).
        json.dumps(snap)

    def test_dump_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        path = tmp_path / "m.json"
        reg.dump_json(str(path))
        assert json.loads(path.read_text())["counters"]["c"] == 7

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.reset()
        assert reg.snapshot()["counters"]["c"] == 0
        assert len(reg) == 1


class TestEventTrace:
    def test_ring_buffer_eviction(self):
        trace = EventTrace(capacity=3)
        for chip in range(5):
            trace.record(CatchWordDetected(chip, 0, 0, 0))
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [e.chip for e in trace] == [2, 3, 4]

    def test_counts_by_kind(self):
        trace = EventTrace()
        trace.record(CatchWordDetected(0, 0, 0, 0))
        trace.record(ScrubPass(4, 4, 0, 0))
        trace.record(ScrubPass(4, 3, 1, 0))
        assert trace.counts_by_kind() == {
            "catch_word_detected": 1, "scrub_pass": 2,
        }

    def test_jsonl_round_trip(self, tmp_path):
        trace = EventTrace(capacity=2)
        trace.record(CatchWordDetected(3, 1, 2, 4))
        trace.record(
            ReadClassified(
                0, 1, 2, 3, "corrected", "corrected_erasure",
                granularities=["row"], chips=[3], permanent=True,
            )
        )
        trace.record(ScrubPass(10, 9, 1, 0))  # evicts the first event
        path = tmp_path / "t.jsonl"
        trace.write_jsonl(str(path))

        # The meta line carries the eviction count.
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {
            "event": "trace_meta", "recorded": 2, "dropped": 1, "capacity": 2,
        }

        records = read_jsonl(str(path))
        assert [r["event"] for r in records] == ["read_classified", "scrub_pass"]
        assert records[0]["granularities"] == ["row"]
        assert all("ts" in r for r in records)

    def test_clear(self):
        trace = EventTrace(capacity=1)
        trace.record(ScrubPass(1, 1, 0, 0))
        trace.record(ScrubPass(1, 1, 0, 0))
        trace.clear()
        assert len(trace) == 0 and trace.dropped == 0


class TestRuntime:
    def test_disabled_by_default(self):
        # The library must be inert unless something opts in.
        import repro.obs.runtime as runtime

        assert runtime.Observability().enabled is False

    def test_emit_respects_switch(self):
        OBS.disable()
        OBS.emit(ScrubPass(1, 1, 0, 0))
        assert len(OBS.trace) == 0
        OBS.enable()
        OBS.emit(ScrubPass(1, 1, 0, 0))
        assert len(OBS.trace) == 1

    def test_span_disabled_records_nothing(self):
        OBS.disable()
        with span("span_disabled_s"):
            pass
        # The timer is never even registered while the switch is off.
        assert "span_disabled_s" not in OBS.registry.snapshot()["timers"]

    def test_span_enabled_records_duration(self):
        OBS.enable()
        with span("t"):
            pass
        timers = OBS.registry.snapshot()["timers"]
        assert timers["t"]["count"] == 1
        assert timers["t"]["sum"] >= 0.0

    def test_timed_decorator(self):
        calls = []

        @timed("f_s")
        def f(x):
            calls.append(x)
            return x * 2

        OBS.disable()
        assert f(2) == 4
        OBS.enable()
        assert f(3) == 6
        assert calls == [2, 3]
        assert OBS.registry.snapshot()["timers"]["f_s"]["count"] == 1

    def test_configure_enables_and_resets(self):
        OBS.enable()
        OBS.registry.counter("stale").inc()
        assert configure(metrics=True) is True
        assert OBS.enabled
        assert OBS.registry.snapshot()["counters"]["stale"] == 0
        assert configure() is False

    def test_enable_with_capacity_swaps_trace(self):
        OBS.enable(trace_capacity=7)
        assert OBS.trace.capacity == 7


class TestProgressReporter:
    def test_disabled_writes_nothing(self):
        stream = io.StringIO()
        reporter = ProgressReporter(10, "x", stream=stream, enabled=False)
        reporter.update(5)
        reporter.close()
        assert stream.getvalue() == ""

    def test_forced_draws_line_with_rate(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            10, "bench", stream=stream, enabled=True, min_interval_s=0.0
        )
        reporter.update(4)
        reporter.set(10)
        reporter.close()
        out = stream.getvalue()
        assert "bench: 10/10 (100.0%)" in out
        assert "/s" in out
        assert out.endswith("\n")

    def test_non_tty_uses_plain_mode(self):
        OBS.progress_enabled = True
        stream = io.StringIO()  # not a tty
        reporter = ProgressReporter(10, "x", stream=stream)
        assert reporter.enabled is True
        assert reporter.tty is False

    def test_non_tty_rate_limits_then_final_line(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            10, "x", stream=stream, enabled=True, fallback_interval_s=3600.0
        )
        reporter.update(3)
        reporter.update(4)
        assert stream.getvalue() == ""  # inside the rate-limit window
        reporter.close()
        out = stream.getvalue()
        assert out.count("\n") == 1  # exactly one final plain line
        assert "x: 7/10 (70.0%)" in out
        assert "\r" not in out  # no control characters in logs

    def test_non_tty_interval_elapsed_emits_lines(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            10, "x", stream=stream, enabled=True, fallback_interval_s=0.0
        )
        reporter.update(2)
        reporter.update(3)
        reporter.close()
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == 3
        assert "x: 2/10" in lines[0]
        assert "x: 5/10" in lines[1]
        assert "x: 5/10" in lines[2]

    def test_non_tty_empty_run_stays_silent(self):
        stream = io.StringIO()
        with ProgressReporter(0, "x", stream=stream, enabled=True):
            pass
        assert stream.getvalue() == ""
