"""Unit tests for sharded parallel execution and result merging."""

import pytest

from repro.faultsim import (
    FailureKind,
    MonteCarloConfig,
    ReliabilityResult,
    XedScheme,
    simulate,
)
from repro.faultsim.campaign import (
    CampaignResult,
    FaultGranularity,
    Outcome,
    Scenario,
    run_chipkill_campaign,
    run_xed_campaign,
)
from repro.faultsim.parallel import plan_shards, resolve_shard_size, validate_workers
from repro.obs import OBS


def _scenario(outcome, gran=FaultGranularity.BIT):
    return Scenario(
        granularities=[gran],
        chips=[0],
        permanent=False,
        outcome=outcome,
        status="ok",
    )


class TestPlanShards:
    def test_even_split(self):
        assert plan_shards(100, 25) == [(0, 25), (25, 25), (50, 25), (75, 25)]

    def test_remainder_shard(self):
        assert plan_shards(10, 4) == [(0, 4), (4, 4), (8, 2)]

    def test_single_shard_when_size_exceeds_total(self):
        assert plan_shards(5, 100) == [(0, 5)]

    def test_zero_total_is_empty_plan(self):
        assert plan_shards(0, 10) == []

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 10)

    def test_bad_shard_size_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(10, 0)

    def test_plan_covers_every_index_once(self):
        shards = plan_shards(1234, 100)
        seen = [i for start, count in shards for i in range(start, start + count)]
        assert seen == list(range(1234))


class TestValidation:
    def test_validate_workers_passes_positive(self):
        assert validate_workers(3) == 3

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_validate_workers_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            validate_workers(bad)

    def test_resolve_shard_size_default(self):
        assert resolve_shard_size(100, None, 25) == 25

    def test_resolve_shard_size_explicit(self):
        assert resolve_shard_size(100, 10, 25) == 10

    def test_resolve_shard_size_rejects_non_positive(self):
        with pytest.raises(ValueError):
            resolve_shard_size(100, 0, 25)


class TestReliabilityMerge:
    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            ReliabilityResult.merge([])

    def test_singleton_merge_is_identity(self):
        r = ReliabilityResult(
            scheme_name="XED", num_systems=10, years=7.0,
            failure_times_hours=[1.0, 2.0], kinds=[FailureKind.DUE, FailureKind.SDC],
        )
        merged = ReliabilityResult.merge([r])
        assert merged.num_systems == 10
        assert merged.failure_times_hours == [1.0, 2.0]
        assert merged.kinds == [FailureKind.DUE, FailureKind.SDC]

    def test_uneven_shards_concatenate_in_order(self):
        a = ReliabilityResult("XED", 5, 7.0, [1.0], [FailureKind.DUE])
        b = ReliabilityResult("XED", 3, 7.0, [], [])
        c = ReliabilityResult("XED", 2, 7.0, [2.0, 3.0], [FailureKind.SDC, FailureKind.DUE])
        merged = ReliabilityResult.merge([a, b, c])
        assert merged.num_systems == 10
        assert merged.failure_times_hours == [1.0, 2.0, 3.0]
        assert merged.kinds == [FailureKind.DUE, FailureKind.SDC, FailureKind.DUE]
        assert merged.failures == 3 and merged.sdc_count == 1

    def test_mismatched_scheme_rejected(self):
        a = ReliabilityResult("XED", 5, 7.0, [], [])
        b = ReliabilityResult("Chipkill", 5, 7.0, [], [])
        with pytest.raises(ValueError):
            ReliabilityResult.merge([a, b])

    def test_mismatched_years_rejected(self):
        a = ReliabilityResult("XED", 5, 7.0, [], [])
        b = ReliabilityResult("XED", 5, 5.0, [], [])
        with pytest.raises(ValueError):
            ReliabilityResult.merge([a, b])


class TestCampaignMerge:
    def test_empty_merge_yields_empty_result(self):
        merged = CampaignResult.merge([])
        assert merged.total == 0
        assert merged.counts == {o: 0 for o in Outcome}

    def test_merge_sums_counts(self):
        a = CampaignResult()
        a.append(_scenario(Outcome.CLEAN))
        a.append(_scenario(Outcome.SDC))
        b = CampaignResult()
        b.append(_scenario(Outcome.CORRECTED))
        merged = CampaignResult.merge([a, b])
        assert merged.total == 3
        assert merged.counts[Outcome.CLEAN] == 1
        assert merged.counts[Outcome.CORRECTED] == 1
        assert merged.counts[Outcome.SDC] == 1

    def test_merge_after_direct_appends(self):
        # Mutating `scenarios` directly leaves the incremental tally
        # stale; merge() must recount, not trust it.
        a = CampaignResult()
        a.scenarios.append(_scenario(Outcome.DUE))
        a.scenarios.append(_scenario(Outcome.DUE))
        b = CampaignResult()
        b.append(_scenario(Outcome.CLEAN))
        b.scenarios.append(_scenario(Outcome.SDC))
        merged = CampaignResult.merge([a, b])
        assert merged.total == 4
        assert merged.counts[Outcome.DUE] == 2
        assert merged.counts[Outcome.SDC] == 1
        # appending to the merged result keeps the tally consistent
        merged.append(_scenario(Outcome.DUE))
        assert merged.counts[Outcome.DUE] == 3 and merged.total == 5

    def test_merge_preserves_granularity_breakdown(self):
        a = CampaignResult()
        a.append(_scenario(Outcome.CLEAN, FaultGranularity.BIT))
        b = CampaignResult()
        b.append(_scenario(Outcome.DUE, FaultGranularity.CHIP))
        merged = CampaignResult.merge([a, b])
        rows = merged.counts_by_granularity()
        assert rows[FaultGranularity.BIT.value][Outcome.CLEAN] == 1
        assert rows[FaultGranularity.CHIP.value][Outcome.DUE] == 1


class TestDeterminism:
    CFG = MonteCarloConfig(num_systems=30_000, seed=11)

    def test_simulate_bit_identical_across_worker_counts(self):
        base = simulate(XedScheme(), self.CFG, workers=1, shard_size=10_000)
        for workers in (2, 3):
            other = simulate(
                XedScheme(), self.CFG, workers=workers, shard_size=10_000
            )
            assert other.failure_times_hours == base.failure_times_hours
            assert other.kinds == base.kinds
            assert other.num_systems == base.num_systems

    def test_simulate_identical_for_workers_gt_shards(self):
        # more workers than shards must not change the plan or result
        base = simulate(XedScheme(), self.CFG, workers=1, shard_size=30_000)
        wide = simulate(XedScheme(), self.CFG, workers=8, shard_size=30_000)
        assert wide.failure_times_hours == base.failure_times_hours

    def test_batch_systems_alias_still_accepted(self):
        via_alias = simulate(XedScheme(), self.CFG, batch_systems=10_000)
        via_kwarg = simulate(XedScheme(), self.CFG, shard_size=10_000)
        assert via_alias.failure_times_hours == via_kwarg.failure_times_hours

    def test_xed_campaign_identical_across_worker_counts(self):
        base = run_xed_campaign(trials=8, seed=5, workers=1, shard_size=3)
        par = run_xed_campaign(trials=8, seed=5, workers=2, shard_size=3)
        assert [s.outcome for s in par.scenarios] == [
            s.outcome for s in base.scenarios
        ]
        assert par.counts == base.counts

    def test_chipkill_campaign_identical_across_worker_counts(self):
        base = run_chipkill_campaign(trials=6, seed=5, workers=1, shard_size=2)
        par = run_chipkill_campaign(trials=6, seed=5, workers=3, shard_size=2)
        assert [s.outcome for s in par.scenarios] == [
            s.outcome for s in base.scenarios
        ]


class TestObsAggregation:
    def test_worker_metrics_fold_into_parent(self):
        cfg = MonteCarloConfig(num_systems=30_000, seed=11)
        try:
            OBS.reset()
            OBS.enable()
            OBS.progress_enabled = False
            simulate(XedScheme(), cfg, workers=1, shard_size=10_000)
            seq_state = OBS.registry.state()
            seq_events = OBS.trace.counts_by_kind()

            OBS.reset()
            OBS.enable()
            OBS.progress_enabled = False
            simulate(XedScheme(), cfg, workers=2, shard_size=10_000)
            par_state = OBS.registry.state()
            par_events = OBS.trace.counts_by_kind()
        finally:
            OBS.reset()
            OBS.disable()

        assert (
            par_state["counters"]["faultsim.failures"]
            == seq_state["counters"]["faultsim.failures"]
        )
        assert (
            par_state["counters"]["faultsim.systems"]
            == seq_state["counters"]["faultsim.systems"]
        )
        assert par_events == seq_events
