"""Chaos-hardened service behaviour: crashes, resumes, corrupt caches.

The service's promise is not "jobs usually finish" but "a job's result
is bit-identical no matter what its execution survived".  These tests
inject real failures through the same ``--chaos`` machinery the CLI
exposes:

* a worker process is **killed mid-campaign** (``chaos=crash=...`` with
  a real ``os._exit`` in a pool worker); the job must pass through the
  observable ``retrying`` state, record the crash in its provenance,
  and still produce the same ``result_digest`` as an undisturbed run
  of the same spec -- the golden-digest contract;
* a **cache entry is corrupted on disk**; the service must detect it on
  read, evict rather than serve it, and recompute to the same digest.
"""

import json

import pytest

from repro.service import CampaignService

#: 4 shards of 2,000 systems; shard 1 crashes its worker on attempt 1.
CHAOS_SPEC = {
    "schemes": ["xed"],
    "systems": 8_000,
    "shard_size": 2_000,
    "seed": 13,
    "workers": 2,
    "chaos": "crash=1",
}

#: The same experiment, undisturbed (identical fingerprint: ``workers``
#: and ``chaos`` are execution knobs, outside the cache identity).
CLEAN_SPEC = {
    k: v for k, v in CHAOS_SPEC.items() if k not in ("workers", "chaos")
}


def _run_to_done(service, spec):
    status, submitted = service.submit(spec)
    assert status == 202
    job = service.store.get(submitted["job_id"])
    assert service.store.wait_for_terminal(job, timeout=120.0)
    assert job.state == "done", job.error
    entry = service.cache.get(submitted["fingerprint"])
    assert entry is not None
    return job, json.loads(entry)["body"]


@pytest.fixture()
def service(tmp_path):
    svc = CampaignService(tmp_path / "data")
    svc.start()
    yield svc
    svc.shutdown(timeout=10.0)


class TestChaosRecovery:
    def test_killed_worker_retries_and_matches_golden_digest(
        self, tmp_path, service
    ):
        # Golden digest from an undisturbed run in a separate service
        # instance (separate data dir, so nothing is shared but code).
        clean = CampaignService(tmp_path / "clean")
        clean.start()
        try:
            _, clean_body = _run_to_done(clean, CLEAN_SPEC)
        finally:
            clean.shutdown(timeout=10.0)

        job, chaos_body = _run_to_done(service, CHAOS_SPEC)

        # The crash actually happened and was survived observably.
        assert "retrying" in job.states_seen
        assert job.retries >= 1
        runs = chaos_body["provenance"]["runs"]
        assert sum(run["crashes"] for run in runs) >= 1
        assert chaos_body["provenance"]["complete"] is True

        # Same fingerprint, same science: the deterministic core --
        # and its digest -- are identical to the undisturbed run's.
        assert chaos_body["fingerprint"] == clean_body["fingerprint"]
        assert chaos_body["result_digest"] == clean_body["result_digest"]
        assert chaos_body["table"] == clean_body["table"]
        assert chaos_body["results"] == clean_body["results"]

    def test_checkpoints_are_cleaned_up_after_success(self, service):
        job, _ = _run_to_done(service, CHAOS_SPEC)
        assert not (service.checkpoint_root / job.fingerprint).exists()


class TestCacheCorruption:
    def test_corrupt_entry_is_evicted_never_served(self, service):
        job, body = _run_to_done(service, CLEAN_SPEC)
        path = service.cache.path_for(job.fingerprint)
        # Flip bytes inside the stored entry (keeps it valid JSON-ish
        # length-wise but breaks the digest).
        raw = path.read_bytes()
        path.write_bytes(raw.replace(b'"table"', b'"tabel"', 1))
        before = service.cache.stats()["corruptions"]
        assert service.cache.get(job.fingerprint) is None
        assert service.cache.stats()["corruptions"] == before + 1
        assert not path.exists(), "corrupt entry must be evicted"

    def test_recompute_after_corruption_matches_digest(self, service):
        job, first_body = _run_to_done(service, CLEAN_SPEC)
        path = service.cache.path_for(job.fingerprint)
        path.write_text("{}", encoding="utf-8")
        # Resubmission detects the dead entry and requeues the same job.
        status, again = service.submit(CLEAN_SPEC)
        assert again["job_id"] == job.job_id
        assert again["disposition"] == "requeued"
        assert service.store.wait_for_terminal(job, timeout=120.0)
        assert job.state == "done"
        second_body = json.loads(service.cache.get(job.fingerprint))["body"]
        assert second_body["result_digest"] == first_body["result_digest"]
        assert second_body["table"] == first_body["table"]

    def test_truncated_entry_is_treated_as_corrupt(self, service):
        job, _ = _run_to_done(service, CLEAN_SPEC)
        path = service.cache.path_for(job.fingerprint)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert service.cache.get(job.fingerprint) is None
        assert not path.exists()
