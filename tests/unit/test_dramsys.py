"""Unit tests for the DDR3 channel state machine and FR-FCFS policy."""

import pytest

from repro.perfsim.configs import CHIPKILL, ECC_DIMM
from repro.perfsim.dramsys import Channel
from repro.perfsim.requests import MemoryRequest, RequestType
from repro.perfsim.timing import SystemTiming


def make_channel(config=ECC_DIMM, ranks=2):
    return Channel(SystemTiming(), config, ranks)


def req(req_type=RequestType.READ, rank=0, bank=0, row=0, column=0,
        arrival=0.0, core=0):
    return MemoryRequest(
        req_type=req_type, core=core, channel=0, rank=rank, bank=bank,
        row=row, column=column, arrival=arrival,
    )


def serve_one(channel, request, now=0.0):
    channel.push(request)
    completed, _ = channel.pump(now)
    assert len(completed) == 1
    return completed[0][1]


def drain(channel, start=0.0):
    """Pump until the channel's queues are fully served."""
    completed, wake = channel.pump(start)
    while wake is not None and not channel.idle:
        more, wake = channel.pump(wake)
        completed.extend(more)
    return completed


class TestBasicTiming:
    def test_cold_read_latency(self):
        t = SystemTiming().ddr
        done = serve_one(make_channel(), req())
        # ACT + tRCD + tCAS + burst.
        assert done == pytest.approx(t.tRCD + t.tCAS + t.tBURST)

    def test_row_hit_faster_than_miss(self):
        ch = make_channel()
        first = serve_one(ch, req(row=7))
        hit = serve_one(ch, req(row=7, column=1), now=first)
        miss_ch = make_channel()
        first2 = serve_one(miss_ch, req(row=7))
        conflict = serve_one(miss_ch, req(row=9), now=first2)
        assert hit - first < conflict - first2
        assert ch.stats.row_hits == 1
        assert miss_ch.stats.row_conflicts == 1

    def test_writes_complete_after_cwd(self):
        t = SystemTiming().ddr
        done = serve_one(make_channel(), req(RequestType.WRITE))
        assert done == pytest.approx(t.tRCD + t.tCWD + t.tBURST)

    def test_bus_serialises_accesses(self):
        ch = make_channel()
        for i in range(4):
            ch.push(req(row=0, column=i))
        completed = drain(ch)
        times = sorted(d for _, d in completed)
        burst = ECC_DIMM.bus_cycles_per_access
        for a, b in zip(times, times[1:]):
            assert b - a >= burst - 1e-9

    @staticmethod
    def _drain(channel):
        completed, wake = channel.pump(0.0)
        while wake is not None:
            more, wake = channel.pump(wake)
            completed.extend(more)
        return completed

    def test_bank_parallelism_overlaps_activates(self):
        seq = make_channel()
        for i in range(4):
            seq.push(req(bank=0, row=i * 2))  # all conflicts, one bank
        done_seq = max(d for _, d in self._drain(seq))

        par = make_channel()
        for i in range(4):
            par.push(req(bank=i, row=5))  # spread across banks
        done_par = max(d for _, d in self._drain(par))
        assert done_par < done_seq


class TestFRFCFS:
    def test_row_hit_jumps_the_queue(self):
        ch = make_channel()
        opener = req(bank=0, row=3)
        serve_one(ch, opener)
        ch.push(req(bank=1, row=9, column=0, arrival=1.0))   # older, miss
        ch.push(req(bank=0, row=3, column=1, arrival=2.0))   # younger, hit
        completed = drain(ch, 50.0)
        order = [r.row for r, _ in completed]
        assert order[0] == 3  # the hit goes first

    def test_fifo_among_misses(self):
        ch = make_channel()
        ch.push(req(bank=0, row=1, arrival=0.0))
        ch.push(req(bank=1, row=2, arrival=1.0))
        completed = drain(ch, 10.0)
        assert [r.row for r, _ in completed] == [1, 2]


class TestWriteDrain:
    def test_hysteresis(self):
        sys_t = SystemTiming()
        ch = make_channel()
        # Fill the write queue past the high watermark.
        for i in range(sys_t.write_drain_high):
            ch.push(req(RequestType.WRITE, bank=i % 8, row=i, column=i % 128))
        ch.push(req(RequestType.READ, bank=0, row=0))
        completed = drain(ch)
        # Drain mode must have issued a contiguous batch of writes down
        # to the low watermark before the read was served.
        kinds = [r.req_type for r, _ in completed]
        first_read = kinds.index(RequestType.READ)
        writes_before = first_read
        assert writes_before >= sys_t.write_drain_high - sys_t.write_drain_low

    def test_reads_prioritised_when_not_draining(self):
        ch = make_channel()
        ch.push(req(RequestType.WRITE, bank=0, row=1, arrival=0.0))
        ch.push(req(RequestType.READ, bank=1, row=2, arrival=1.0))
        completed = drain(ch, 5.0)
        assert completed[0][0].req_type is RequestType.READ


class TestRefresh:
    def test_refresh_fires_periodically(self):
        t = SystemTiming().ddr
        ch = make_channel()
        serve_one(ch, req())
        # Jump past several tREFI windows.
        serve_one(ch, req(row=5, arrival=4 * t.tREFI), now=4 * t.tREFI)
        assert ch.stats.refreshes >= 3

    def test_refresh_closes_rows(self):
        t = SystemTiming().ddr
        ch = make_channel()
        serve_one(ch, req(row=3))
        done = serve_one(
            ch, req(row=3, column=2, arrival=2 * t.tREFI), now=2 * t.tREFI
        )
        # After refresh the row must be re-activated: no row-hit timing.
        assert ch.stats.row_hits == 0


class TestRefreshDeadline:
    """Regression: ACTs may not land inside a pending refresh window.

    Before the fix, an ACT whose computed issue time fell at or past
    ``rank.next_refresh`` was issued anyway; the refresh was applied
    retroactively on the *next* request, closing the just-opened row
    and leaving an ACT logged inside the refresh window.
    """

    def test_act_crossing_deadline_waits_for_refresh(self):
        from repro.perfsim.command_log import Cmd, validate_log

        t = SystemTiming().ddr
        ch = make_channel(ranks=1)
        log = ch.enable_command_log()
        serve_one(ch, req(row=3))
        # A row conflict arriving just before the (single-rank) deadline
        # at tREFI: its ACT lands past the deadline, so the refresh must
        # issue first and the ACT be pushed past the window.
        late = t.tREFI - 5.0
        serve_one(ch, req(row=9, arrival=late), now=late)
        assert ch.stats.refreshes == 1
        acts = [c for c in log.commands if c.cmd is Cmd.ACT]
        refresh = [c for c in log.commands if c.cmd is Cmd.REFRESH][0]
        assert refresh.time == pytest.approx(t.tREFI)
        assert acts[-1].time >= refresh.time + t.tRFC - 1e-9
        assert validate_log(log, t) == []

    def test_row_hit_may_postpone_refresh(self):
        from repro.perfsim.command_log import Cmd, validate_log

        t = SystemTiming().ddr
        ch = make_channel(ranks=1)
        log = ch.enable_command_log()
        serve_one(ch, req(row=3))
        # A row hit just before the deadline bursts past it (JEDEC
        # refresh postponing) -- no refresh yet, and still lint-clean.
        late = t.tREFI - 2.0
        serve_one(ch, req(row=3, column=5, arrival=late), now=late)
        assert ch.stats.refreshes == 0
        assert ch.stats.row_hits == 1
        # The postponed refresh catches up before the next ACT.
        after = t.tREFI + 10.0
        serve_one(ch, req(row=7, arrival=after), now=after)
        assert ch.stats.refreshes == 1
        assert validate_log(log, t) == []

    def test_validator_flags_act_inside_refresh_window(self):
        from repro.perfsim.command_log import (
            Cmd, CommandLog, LoggedCommand, validate_log,
        )

        t = SystemTiming().ddr
        log = CommandLog()
        log.add(LoggedCommand(Cmd.REFRESH, 1000.0, 0, -1))
        log.add(LoggedCommand(Cmd.ACT, 1000.0 + t.tRFC / 2, 0, 0, 5))
        constraints = {v.constraint for v in validate_log(log, t)}
        assert "tRFC" in constraints


class TestLockstepConfigs:
    def test_chipkill_counts_physical_activates(self):
        ch = make_channel(CHIPKILL, ranks=1)
        serve_one(ch, req())
        assert ch.stats.activates == 2  # both physical ranks activated

    def test_chipkill_occupies_bus_twice_as_long(self):
        base_ch = make_channel()
        ck_ch = make_channel(CHIPKILL, ranks=1)
        serve_one(base_ch, req())
        serve_one(ck_ch, req())
        assert ck_ch.stats.bus_busy_cycles == 2 * base_ch.stats.bus_busy_cycles

    def test_mean_read_latency_tracked(self):
        ch = make_channel()
        serve_one(ch, req())
        assert ch.stats.mean_read_latency > 0
        assert ch.stats.reads_served == 1
