"""Hypothesis property suite for the ECC codecs, against BOTH backends.

Every property here is phrased over the differential harness
(:mod:`repro.ecc.differential`), so each example simultaneously checks
the scalar golden model, the batched kernels, and their bit-identity:

* encode/decode round-trips for arbitrary data batches;
* a single flipped bit is always corrected back to the injected
  position;
* any two flipped bits are always a detected-uncorrectable for the
  Hamming code (and CRC8 -- both are true SECDED at length 72);
* any burst of length <= 8 is always detected by CRC8-ATM (the
  degree-8 CRC guarantee behind Table II's 100% burst column).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.batched import BatchOutcome
from repro.ecc.differential import replay_decode, replay_roundtrip

data64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
bitpos = st.integers(min_value=0, max_value=71)
data_batches = st.lists(data64, min_size=1, max_size=32)


class TestRoundTripBothBackends:
    @given(data=data_batches)
    @settings(max_examples=60)
    def test_clean_roundtrip(self, secded_code, data):
        report = replay_roundtrip(secded_code, data)
        assert report.outcome_counts == {
            BatchOutcome.NO_ERROR.name: len(data)
        }

    @given(words=st.lists(
        st.integers(min_value=0, max_value=(1 << 72) - 1),
        min_size=1, max_size=32,
    ))
    @settings(max_examples=60)
    def test_arbitrary_words_agree(self, secded_code, words):
        """Backends agree on every word, codeword or not."""
        report = replay_decode(secded_code, words)
        assert report.words == len(words)


class TestSingleBitCorrection:
    @given(data=data64, bit=bitpos)
    @settings(max_examples=80)
    def test_single_bit_corrected_to_injected_position(
        self, secded_code, data, bit
    ):
        codeword = replay_roundtrip(secded_code, [data], [1 << bit])
        assert codeword.outcome_counts == {BatchOutcome.CORRECTED.name: 1}
        # The harness already asserted both backends name the same
        # corrected bit; pin it to the *injected* position via scalar.
        result = secded_code.decode(secded_code.encode(data) ^ (1 << bit))
        assert result.corrected_bit == bit
        assert result.data == data


class TestDoubleBitDetection:
    @given(data=data64, b1=bitpos, b2=bitpos)
    @settings(max_examples=80)
    def test_double_bit_is_due(self, secded_code, data, b1, b2):
        if b1 == b2:
            return
        pattern = (1 << b1) | (1 << b2)
        report = replay_roundtrip(secded_code, [data], [pattern])
        assert report.outcome_counts == {
            BatchOutcome.DETECTED_UNCORRECTABLE.name: 1
        }


class TestCRC8BurstGuarantee:
    @given(
        data=data64,
        start=st.integers(min_value=0, max_value=71),
        length=st.integers(min_value=1, max_value=8),
        interior=st.integers(min_value=0, max_value=(1 << 6) - 1),
    )
    @settings(max_examples=120)
    def test_burst_up_to_8_always_detected(
        self, crc8, data, start, length, interior
    ):
        if start + length > 72:
            start = 72 - length
        # Fixed endpoints, free interior: the general length-L burst.
        pattern = 1 if length == 1 else (1 << (length - 1)) | 1
        pattern |= (interior & ((1 << max(0, length - 2)) - 1)) << 1
        report = replay_roundtrip(crc8, [data], [pattern << start])
        # Never silent: weight-1 bursts correct, wider ones are DUE or
        # (for weight 2 at distance < 8 aliasing a single) corrected --
        # but *detected* means the syndrome is non-zero, i.e. the word
        # is never accepted as clean.
        assert BatchOutcome.NO_ERROR.name not in report.outcome_counts
