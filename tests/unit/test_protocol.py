"""Wire-protocol framing tests for the distributed coordinator link.

The length-prefixed JSON framing of :mod:`repro.runtime.protocol` must
survive arbitrary payloads, arbitrary chunking (one byte at a time, many
frames per chunk) and reject oversized or corrupt frames -- property
tests drive the round trip with hypothesis, and socket-pair tests cover
the blocking and asyncio helpers the worker/coordinator actually use.
"""

import asyncio
import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import protocol
from repro.runtime.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    recv_message,
    send_message,
)

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2 ** 53), max_value=2 ** 53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=24),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)
messages = st.dictionaries(st.text(max_size=16), json_values, max_size=6)


class TestFraming:
    @given(message=messages)
    @settings(max_examples=80)
    def test_round_trip(self, message):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(message)) == [message]
        assert decoder.pending_bytes == 0

    @given(batch=st.lists(messages, min_size=1, max_size=5))
    @settings(max_examples=40)
    def test_many_frames_in_one_chunk(self, batch):
        decoder = FrameDecoder()
        blob = b"".join(encode_frame(m) for m in batch)
        assert decoder.feed(blob) == batch

    @given(batch=st.lists(messages, min_size=1, max_size=3))
    @settings(max_examples=25)
    def test_byte_at_a_time(self, batch):
        decoder = FrameDecoder()
        out = []
        for byte in b"".join(encode_frame(m) for m in batch):
            out.extend(decoder.feed(bytes([byte])))
        assert out == batch
        assert decoder.pending_bytes == 0

    def test_partial_frame_is_buffered(self):
        frame = encode_frame({"type": "ready"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:5]) == []
        assert decoder.pending_bytes == 5
        assert decoder.feed(frame[5:]) == [{"type": "ready"}]

    def test_oversized_length_prefix_rejected(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="cap"):
            FrameDecoder().feed(header)

    def test_oversized_body_rejected_on_encode(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"filler": "x" * 64})

    def test_non_json_body_rejected(self):
        body = b"\xff\xfenot json"
        with pytest.raises(ProtocolError, match="not JSON"):
            FrameDecoder().feed(struct.pack(">I", len(body)) + body)

    def test_non_object_body_rejected(self):
        body = b"[1,2,3]"
        with pytest.raises(ProtocolError, match="JSON object"):
            FrameDecoder().feed(struct.pack(">I", len(body)) + body)

    def test_canonical_encoding_is_deterministic(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b


class TestBlockingSocketHelpers:
    def test_send_recv_round_trip(self):
        left, right = socket.socketpair()
        try:
            send_message(left, {"type": "hello", "worker": "w1"})
            assert recv_message(right) == {"type": "hello", "worker": "w1"}
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_message(right) is None
        finally:
            right.close()

    def test_eof_mid_frame_raises(self):
        left, right = socket.socketpair()
        frame = encode_frame({"type": "ready"})
        left.sendall(frame[:-2])
        left.close()
        try:
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(right)
        finally:
            right.close()


class TestAsyncioHelpers:
    def _reader_with(self, data: bytes) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return reader

    def test_read_message_round_trip(self):
        async def scenario():
            reader = self._reader_with(
                encode_frame({"type": "job", "n": 4})
                + encode_frame({"type": "drain"})
            )
            first = await protocol.read_message(reader)
            second = await protocol.read_message(reader)
            third = await protocol.read_message(reader)
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert first == {"type": "job", "n": 4}
        assert second == {"type": "drain"}
        assert third is None

    def test_read_message_eof_mid_frame(self):
        async def scenario():
            reader = self._reader_with(encode_frame({"type": "drain"})[:-1])
            await protocol.read_message(reader)

        with pytest.raises(ProtocolError, match="mid-frame"):
            asyncio.run(scenario())

    def test_read_message_oversized_prefix(self):
        async def scenario():
            reader = self._reader_with(struct.pack(">I", MAX_FRAME_BYTES + 9))
            await protocol.read_message(reader)

        with pytest.raises(ProtocolError, match="cap"):
            asyncio.run(scenario())
