"""Unit tests for the mask/value fault representation (FaultSim core)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.geometry import ChipGeometry
from repro.faultsim.fault import (
    AddressRange,
    ChipFault,
    FaultSpace,
    combination_failure_time,
    group_by_rank,
)
from repro.faultsim.fault_models import FailureMode

SPACE = FaultSpace()
addr31 = st.integers(min_value=0, max_value=SPACE.full_mask)
modes = st.sampled_from(list(FailureMode))


class TestFaultSpace:
    def test_layout_is_31_bits(self):
        assert SPACE.total_bits == 3 + 15 + 7 + 3 + 3

    def test_field_masks_partition_the_space(self):
        union = (
            SPACE.lane_mask
            | SPACE.beat_mask
            | SPACE.column_mask
            | SPACE.row_mask
            | SPACE.bank_mask
        )
        assert union == SPACE.full_mask
        total_bits = sum(
            bin(m).count("1")
            for m in (
                SPACE.lane_mask,
                SPACE.beat_mask,
                SPACE.column_mask,
                SPACE.row_mask,
                SPACE.bank_mask,
            )
        )
        assert total_bits == SPACE.total_bits  # disjoint fields

    def test_for_chip_x4_vs_x8(self):
        x8 = FaultSpace.for_chip(ChipGeometry(device_width=8))
        x4 = FaultSpace.for_chip(ChipGeometry(device_width=4))
        assert x8.lane_bits == 3
        assert x4.lane_bits == 2

    def test_wildcards_match_granularity(self):
        assert SPACE.wildcard_for(FailureMode.SINGLE_BIT) == 0
        assert SPACE.wildcard_for(FailureMode.SINGLE_WORD) == SPACE.word_mask
        assert SPACE.wildcard_for(FailureMode.SINGLE_ROW) == (
            SPACE.column_mask | SPACE.word_mask
        )
        assert SPACE.wildcard_for(FailureMode.MULTI_BANK) == SPACE.full_mask

    def test_column_wildcard_frees_rows_and_lane_only(self):
        w = SPACE.wildcard_for(FailureMode.SINGLE_COLUMN)
        assert w == SPACE.row_mask | SPACE.lane_mask
        # Bank, column address and beat stay pinned: the broken bitline.
        assert w & SPACE.bank_mask == 0
        assert w & SPACE.column_mask == 0
        assert w & SPACE.beat_mask == 0


class TestAddressRange:
    @given(a=addr31)
    def test_range_covers_its_own_value(self, a):
        assert AddressRange(a, 0).covers(a)

    @given(a=addr31, b=addr31)
    def test_full_wildcard_covers_everything(self, a, b):
        assert AddressRange(a, SPACE.full_mask).covers(b)

    @given(a=addr31, b=addr31)
    def test_intersection_is_symmetric(self, a, b):
        r1 = AddressRange(a, SPACE.row_mask)
        r2 = AddressRange(b, SPACE.column_mask)
        assert r1.intersects(r2) == r2.intersects(r1)

    @given(a=addr31)
    def test_range_intersects_itself(self, a):
        r = AddressRange(a, 0)
        assert r.intersects(r)

    def test_exact_disjoint_addresses_do_not_intersect(self):
        assert not AddressRange(0, 0).intersects(AddressRange(1, 0))

    def test_row_and_column_intersect_when_bank_matches(self):
        # A row fault and a column fault in the same bank always share
        # the crossing word.
        row_fault = AddressRange(
            (2 << SPACE.bank_shift) | (100 << SPACE.row_shift),
            SPACE.column_mask | SPACE.word_mask,
        )
        col_fault = AddressRange(
            (2 << SPACE.bank_shift) | (55 << SPACE.column_shift),
            SPACE.row_mask | SPACE.lane_mask,
        )
        assert row_fault.intersects(col_fault)

    def test_different_banks_never_intersect(self):
        row_fault = AddressRange(
            (1 << SPACE.bank_shift), SPACE.column_mask | SPACE.word_mask
        )
        col_fault = AddressRange(
            (2 << SPACE.bank_shift), SPACE.row_mask | SPACE.lane_mask
        )
        assert not row_fault.intersects(col_fault)

    @given(a=addr31, b=addr31, c=addr31)
    @settings(max_examples=200)
    def test_pairwise_implies_joint(self, a, b, c):
        """Field-aligned wildcards: pairwise compatibility is joint
        compatibility -- the property the triple-fault checks rely on."""
        ranges = [
            AddressRange(a, SPACE.word_mask),
            AddressRange(b, SPACE.column_mask | SPACE.word_mask),
            AddressRange(c, SPACE.row_mask | SPACE.lane_mask),
        ]
        pairwise = all(
            ranges[i].intersects(ranges[j])
            for i in range(3)
            for j in range(i + 1, 3)
        )
        assert AddressRange.all_intersect(ranges) == pairwise


def fault(channel=0, rank=0, chip=0, mode=FailureMode.SINGLE_ROW,
          time=100.0, value=0, wildcard=None, end=float("inf"),
          correctable=False, permanent=True):
    if wildcard is None:
        wildcard = SPACE.wildcard_for(mode)
    return ChipFault(
        channel=channel, rank=rank, chip=chip, mode=mode,
        permanent=permanent, time_hours=time,
        addr=AddressRange(value, wildcard),
        on_die_correctable=correctable, end_hours=end,
    )


class TestChipFault:
    def test_alive_window(self):
        f = fault(time=10.0, end=20.0)
        assert f.alive_at(10.0) and f.alive_at(20.0)
        assert not f.alive_at(9.9) and not f.alive_at(20.1)

    def test_time_overlap(self):
        a = fault(time=0.0, end=10.0)
        b = fault(time=5.0, end=15.0)
        c = fault(time=11.0, end=12.0)
        assert a.overlaps_in_time(b)
        assert not a.overlaps_in_time(c)

    def test_collides_requires_same_rank(self):
        a = fault(rank=0, chip=0)
        b = fault(rank=1, chip=1)
        assert not a.collides_with(b)

    def test_collides_requires_different_chip(self):
        a = fault(chip=3)
        b = fault(chip=3)
        assert not a.collides_with(b)

    def test_collides_requires_address_intersection(self):
        a = fault(chip=0, mode=FailureMode.SINGLE_ROW,
                  value=1 << SPACE.bank_shift)
        b = fault(chip=1, mode=FailureMode.SINGLE_ROW,
                  value=2 << SPACE.bank_shift)
        assert not a.collides_with(b)

    def test_bank_faults_in_same_bank_collide(self):
        a = fault(chip=0, mode=FailureMode.SINGLE_BANK,
                  value=3 << SPACE.bank_shift)
        b = fault(chip=5, mode=FailureMode.SINGLE_BANK,
                  value=3 << SPACE.bank_shift)
        assert a.collides_with(b)

    def test_combination_failure_time_is_last_arrival(self):
        a, b = fault(time=50.0), fault(time=99.0, chip=1)
        assert combination_failure_time([a, b]) == 99.0

    def test_group_by_rank(self):
        faults = [fault(channel=0, rank=0), fault(channel=0, rank=1),
                  fault(channel=1, rank=0), fault(channel=0, rank=0, chip=2)]
        groups = group_by_rank(faults)
        assert len(groups) == 3
        assert len(groups[(0, 0)]) == 2
