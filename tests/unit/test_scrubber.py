"""Unit tests for the patrol scrubber."""

import pytest

from repro.core import XedController
from repro.core.scrubber import PatrolScrubber, ScrubReport
from repro.core.types import ReadStatus
from repro.dram import XedDimm
from repro.dram.chip import FaultGranularity


def small_system(seed=1, scaling=0.0):
    dimm = XedDimm.build(seed=seed, scaling_ber=scaling)
    ctrl = XedController(dimm, seed=seed + 3)
    scrubber = PatrolScrubber(ctrl, banks=1, rows=4, columns=16)
    return dimm, ctrl, scrubber


class TestScrubReport:
    def test_record_classification(self):
        report = ScrubReport()
        report.record(ReadStatus.CLEAN)
        report.record(ReadStatus.CORRECTED_ERASURE)
        report.record(ReadStatus.DUE)
        assert report.lines_scrubbed == 3
        assert (report.clean, report.corrected, report.uncorrectable) == (1, 1, 1)
        assert report.by_status["corrected_erasure"] == 1

    def test_summary(self):
        report = ScrubReport()
        report.record(ReadStatus.CLEAN)
        assert "1 clean" in report.format_summary()


class TestPatrolScrubber:
    def test_clean_region(self):
        _, ctrl, scrubber = small_system(1)
        for col in range(16):
            ctrl.write_line(0, 0, col, [col] * 8)
        report = scrubber.scrub_region()
        assert report.lines_scrubbed == 4 * 16
        assert report.uncorrectable == 0

    def test_heals_transient_row_fault(self):
        dimm, ctrl, scrubber = small_system(2)
        for col in range(16):
            ctrl.write_line(0, 1, col, [0xAB00 + col] * 8)
        dimm.inject_chip_failure(
            chip=4, granularity=FaultGranularity.ROW, permanent=False,
            bank=0, row=1,
        )
        report = scrubber.scrub_region()
        assert report.corrected >= 16  # every line of the damaged row
        # After the scrub pass, the damage is gone.
        after = scrubber.scrub_region()
        assert after.corrected == 0
        for col in range(16):
            assert ctrl.read_line(0, 1, col).words == [0xAB00 + col] * 8

    def test_permanent_fault_keeps_correcting(self):
        dimm, ctrl, scrubber = small_system(3)
        for col in range(16):
            ctrl.write_line(0, 2, col, [col + 1] * 8)
        dimm.inject_chip_failure(
            chip=2, granularity=FaultGranularity.ROW, permanent=True,
            bank=0, row=2,
        )
        first = scrubber.scrub_region()
        second = scrubber.scrub_region()
        # Permanent damage re-corrupts after every rewrite: both passes
        # correct the same row.
        assert first.corrected >= 16
        assert second.corrected >= 16

    def test_step_walks_rows_and_wraps(self):
        _, ctrl, scrubber = small_system(4)
        seen = []
        for _ in range(scrubber.rows_per_full_patrol + 1):
            seen.append(scrubber._cursor)
            scrubber.step()
        assert seen[0] == (0, 0)
        assert len(set(seen[:-1])) == scrubber.rows_per_full_patrol
        assert scrubber._cursor == seen[1]  # wrapped around

    def test_step_report_covers_one_row(self):
        _, ctrl, scrubber = small_system(5)
        report = scrubber.step()
        assert report.lines_scrubbed == 16

    def test_scaling_faults_do_not_block_patrol(self):
        _, ctrl, scrubber = small_system(6, scaling=1e-3)
        for col in range(16):
            ctrl.write_line(0, 0, col, [col] * 8)
        report = scrubber.scrub_region()
        assert report.uncorrectable == 0
