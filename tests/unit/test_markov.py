"""Unit and property tests for the analytical Markov backend.

Three layers, mirroring docs/theory.md:

* matrix construction -- state-space enumeration, row stochasticity of
  the arrival matrix, probability conservation through the scrub
  (repair) matrix;
* solver behaviour -- monotone cumulative curves, mechanism
  decomposition that sums to the totals, hypothesis properties (DUE
  monotone in the FIT scale, scrub-interval ordering and limits);
* the result surface -- :class:`MarkovResult` duck-compatibility with
  the Monte-Carlo :class:`ReliabilityResult` read API, dispatch
  through ``simulate()``, and the sweep/CLI entry points.

Numerical *agreement* with Monte-Carlo is asserted separately, in
``tests/unit/test_faultsim_differential.py`` (Wilson intervals).
"""

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.dram.geometry import ChipGeometry
from repro.faultsim import (
    ChipkillScheme,
    DoubleChipkillScheme,
    EccDimmScheme,
    MarkovResult,
    MonteCarloConfig,
    NonEccScheme,
    XedChipkillScheme,
    XedScheme,
    markov,
    simulate,
    solve,
    solve_many,
    sweep,
)
from repro.faultsim.fault import FaultSpace
from repro.faultsim.schemes import ProtectionScheme
from repro.faultsim.vectorized import UnsupportedSchemeError

ALL_SCHEMES = [
    NonEccScheme(),
    EccDimmScheme(),
    XedScheme(),
    ChipkillScheme(),
    DoubleChipkillScheme(),
    XedChipkillScheme(),
]


def _spec_for(scheme, config=None):
    """Build the scheme's chain spec the way ``solve`` does."""
    config = config or MonteCarloConfig()
    scheme.bind_ecc_backend(config.ecc_backend)
    space = FaultSpace.for_chip(
        ChipGeometry(device_width=config.device_width)
    )
    return markov._chain_spec(scheme, config.fit, space, 0.0)


class TestStateSpace:
    def test_threshold_one_single_state(self):
        assert markov._chain_states(1, scrubbed=False) == [(0, 0, 0, 0)]
        assert markov._chain_states(1, scrubbed=True) == [(0, 0, 0, 0)]

    def test_unscrubbed_enumeration(self):
        states = markov._chain_states(2, scrubbed=False)
        expected = (
            (markov._WIDE_PERM_CAP + 1)
            * (markov._WIDE_TRANS_CAP + 1)
            * (markov._NARROW_PERM_CAP + 1)
            * (markov._NARROW_TRANS_CAP + 1)
        )
        assert len(states) == expected == 324
        assert states[0] == (0, 0, 0, 0)
        assert len(set(states)) == len(states)

    def test_scrubbed_enumeration_splits_by_age(self):
        states = markov._chain_states(2, scrubbed=True)
        expected = (
            (markov._WIDE_PERM_CAP + 1)
            * (markov._WIDE_AGE_CAP + 1) ** 2
            * (markov._NARROW_PERM_CAP + 1)
            * (markov._NARROW_AGE_CAP + 1) ** 2
        )
        assert len(states) == expected == 288
        assert all(len(s) == 6 for s in states)


class TestMatrixConstruction:
    @pytest.mark.parametrize(
        "scheme", ALL_SCHEMES, ids=lambda s: type(s).__name__
    )
    def test_arrival_matrix_row_stochastic(self, scheme):
        spec = _spec_for(scheme)
        states = markov._chain_states(spec.threshold, scrubbed=False)
        A = markov._arrival_matrix(spec, states, dt=17.1, scrubbed=False)
        np.testing.assert_allclose(A.sum(axis=1), 1.0, atol=1e-12)
        assert (A >= -1e-15).all()

    def test_arrival_matrix_scrubbed_row_stochastic(self):
        spec = _spec_for(XedScheme())
        states = markov._chain_states(spec.threshold, scrubbed=True)
        A = markov._arrival_matrix(spec, states, dt=12.0, scrubbed=True)
        np.testing.assert_allclose(A.sum(axis=1), 1.0, atol=1e-12)

    def test_absorbing_states_stay_absorbed(self):
        spec = _spec_for(ChipkillScheme())
        states = markov._chain_states(spec.threshold, scrubbed=False)
        A = markov._arrival_matrix(spec, states, dt=17.1, scrubbed=False)
        n = len(states)
        for i in range(n, n + len(markov.MECHANISMS)):
            assert A[i, i] == 1.0
            assert A[i].sum() == 1.0

    @pytest.mark.parametrize("survive_p", [0.5, 0.75, 1.0])
    def test_repair_matrix_conserves_mass(self, survive_p):
        states = markov._chain_states(2, scrubbed=True)
        R = markov._repair_matrix(states, survive_p)
        np.testing.assert_allclose(R.sum(axis=1), 1.0, atol=1e-12)
        assert (R >= 0.0).all()

    def test_repair_matrix_ages_young_and_expires_old(self):
        states = markov._chain_states(2, scrubbed=True)
        idx = {s: i for i, s in enumerate(states)}
        R = markov._repair_matrix(states, 1.0)
        # survive_p=1: a young narrow transient becomes old...
        src = (0, 0, 0, 0, 1, 0)
        assert R[idx[src], idx[(0, 0, 0, 0, 0, 1)]] == 1.0
        # ...and an old one expires to empty.
        src = (0, 0, 0, 0, 0, 1)
        assert R[idx[src], idx[(0, 0, 0, 0, 0, 0)]] == 1.0

    def test_repair_matrix_leaves_permanents_alone(self):
        states = markov._chain_states(2, scrubbed=True)
        idx = {s: i for i, s in enumerate(states)}
        R = markov._repair_matrix(states, 0.5)
        src = (1, 0, 0, 3, 0, 0)  # wide + narrow permanents only
        assert R[idx[src], idx[src]] == 1.0


class TestSolver:
    def test_curve_monotone_and_anchored(self):
        result = solve(XedScheme(), MonteCarloConfig())
        probs = [p for _, p in result.curve_points]
        assert all(b >= a for a, b in zip(probs, probs[1:]))
        assert result.curve_points[-1] == (
            7.0,
            result.probability_of_failure,
        )

    @pytest.mark.parametrize(
        "scheme", ALL_SCHEMES, ids=lambda s: type(s).__name__
    )
    def test_mechanisms_sum_to_total(self, scheme):
        result = solve(scheme, MonteCarloConfig())
        assert result.probability_of_failure == pytest.approx(
            sum(result.mechanisms.values()), rel=1e-9
        )
        assert result.probability_of_failure == pytest.approx(
            result.due_probability + result.sdc_probability, rel=1e-9
        )

    def test_threshold_one_schemes_split(self):
        non_ecc = solve(NonEccScheme(), MonteCarloConfig())
        ecc = solve(EccDimmScheme(), MonteCarloConfig())
        # No-ECC has no detection, so every failure is silent...
        assert non_ecc.due_probability == 0.0
        assert non_ecc.sdc_probability == non_ecc.probability_of_failure
        # ...while ECC-DIMM detects most multi-bit faults (its SDC
        # fraction), turning the bulk of its failures into DUEs.
        assert 0.0 < ecc.sdc_probability < ecc.due_probability
        assert ecc.sdc_probability < non_ecc.sdc_probability

    def test_stronger_schemes_are_stronger(self):
        cfg = MonteCarloConfig()
        by_name = {
            type(s).__name__: solve(s, cfg).probability_of_failure
            for s in ALL_SCHEMES
        }
        assert by_name["XedScheme"] < by_name["EccDimmScheme"]
        assert by_name["XedChipkillScheme"] < by_name["ChipkillScheme"]
        assert by_name["DoubleChipkillScheme"] < by_name["ChipkillScheme"]

    def test_custom_scheme_rejected(self):
        class WeirdScheme(XedScheme):
            """A subclass whose evaluate() the chain cannot model."""

        with pytest.raises(UnsupportedSchemeError):
            solve(WeirdScheme(), MonteCarloConfig())

    def test_scaling_rate_feeds_promotion(self):
        base = solve(XedScheme(), MonteCarloConfig())
        scaled = solve(
            XedScheme(), MonteCarloConfig(scaling_rate=1e-4)
        )
        assert (
            scaled.probability_of_failure > base.probability_of_failure
        )

    @settings(max_examples=8, deadline=None)
    @given(
        low=st.floats(min_value=0.25, max_value=4.0),
        ratio=st.floats(min_value=1.0, max_value=4.0),
    )
    def test_due_monotone_in_fit_scale(self, low, ratio):
        cfg = MonteCarloConfig()
        lo = solve(
            ChipkillScheme(),
            dataclasses.replace(cfg, fit=cfg.fit.scaled(low)),
        )
        hi = solve(
            ChipkillScheme(),
            dataclasses.replace(cfg, fit=cfg.fit.scaled(low * ratio)),
        )
        assert hi.due_probability >= lo.due_probability

    @settings(max_examples=6, deadline=None)
    @given(hours=st.sampled_from([12.0, 24.0, 72.0, 168.0]))
    def test_scrubbing_never_hurts(self, hours):
        no_scrub = solve(
            XedScheme(), MonteCarloConfig(scrub_hours=None)
        )
        scrubbed = solve(
            XedScheme(), MonteCarloConfig(scrub_hours=hours)
        )
        assert (
            scrubbed.probability_of_failure
            <= no_scrub.probability_of_failure
        )

    def test_scrub_interval_ordering(self):
        p = {
            hours: solve(
                XedScheme(), MonteCarloConfig(scrub_hours=hours)
            ).probability_of_failure
            for hours in (24.0, 168.0, None)
        }
        assert p[24.0] <= p[168.0] <= p[None]

    def test_scrub_longer_than_lifetime_matches_no_scrub(self):
        # A scrub that never fires inside the lifetime must reproduce
        # the unscrubbed answer up to quantization differences.
        years = 7.0
        huge = years * 8760.0 * 2.0
        no_scrub = solve(
            XedScheme(), MonteCarloConfig(scrub_hours=None, years=years)
        )
        idle = solve(
            XedScheme(), MonteCarloConfig(scrub_hours=huge, years=years)
        )
        assert idle.probability_of_failure == pytest.approx(
            no_scrub.probability_of_failure, rel=1e-3
        )

    def test_fractional_lifetime_grid(self):
        result = solve(XedScheme(), MonteCarloConfig(years=2.5))
        assert result.curve_points[-1][0] == 2.5
        assert [t for t, _ in result.curve_points] == [1.0, 2.0, 2.5]


class TestResultSurface:
    @pytest.fixture(scope="class")
    def result(self):
        return solve(XedScheme(), MonteCarloConfig(num_systems=100_000))

    def test_expected_counts(self, result):
        assert result.failures == int(
            round(result.probability_of_failure * 100_000)
        )
        assert result.due + result.sdc in (
            result.failures,
            result.failures - 1,
            result.failures + 1,
        )  # independent rounding

    def test_confidence_interval_degenerate(self, result):
        p = result.probability_of_failure
        assert result.confidence_interval() == (p, p)

    def test_probability_by_year_interpolates(self, result):
        assert result.probability_by_year(0.0) == 0.0
        one = result.probability_by_year(1.0)
        two = result.probability_by_year(2.0)
        mid = result.probability_by_year(1.5)
        assert one <= mid <= two
        assert mid == pytest.approx((one + two) / 2.0)
        # Beyond the grid: clamp to the final point.
        assert (
            result.probability_by_year(99.0)
            == result.probability_of_failure
        )

    def test_curve_default_years(self, result):
        curve = result.curve()
        assert [y for y, _ in curve] == list(range(1, 8))

    def test_improvement_over_monte_carlo_result(self, result):
        mc = simulate(
            EccDimmScheme(), MonteCarloConfig(num_systems=2_000, seed=7)
        )
        assert result.improvement_over(mc) > 1.0

    def test_format_summary_mentions_analytical(self, result):
        text = result.format_summary()
        assert "analytical" in text and "DUE" in text

    def test_format_mechanisms_ranked(self, result):
        lines = result.format_mechanisms().splitlines()
        assert "decomposition" in lines[0]
        shown = [float(line.split()[1]) for line in lines[1:]]
        assert shown == sorted(shown, reverse=True)

    def test_format_mechanisms_empty(self):
        empty = MarkovResult(
            scheme_name="None",
            years=7.0,
            num_systems=10,
            probability_of_failure=0.0,
            due_probability=0.0,
            sdc_probability=0.0,
        )
        assert "no failure mass" in empty.format_mechanisms()
        assert empty.improvement_over(empty) == math.inf
        assert empty.probability_by_year(3.0) == 0.0


class TestDispatchAndSweep:
    def test_simulate_dispatches_analytical(self):
        cfg = MonteCarloConfig(
            num_systems=123, faultsim_backend="analytical"
        )
        result = simulate(XedScheme(), cfg)
        assert isinstance(result, MarkovResult)
        assert result.num_systems == 123

    def test_solve_many_order(self):
        results = solve_many(
            [XedScheme(), ChipkillScheme()], MonteCarloConfig()
        )
        assert [r.scheme_name for r in results] == [
            XedScheme().name,
            ChipkillScheme().name,
        ]

    def test_sweep_grid_shape_and_monotonicity(self):
        cells = sweep(
            [XedScheme(), ChipkillScheme()],
            MonteCarloConfig(),
            fit_scales=(1.0, 4.0),
            scrub_hours=(None, 24.0),
        )
        assert len(cells) == 2 * 2 * 2
        xed = {
            (c.fit_scale, c.scrub_hours): c.result.probability_of_failure
            for c in cells
            if c.scheme_name == XedScheme().name
        }
        assert xed[(4.0, None)] > xed[(1.0, None)]
        assert xed[(4.0, 24.0)] < xed[(4.0, None)]

    def test_cli_sweep_command(self, capsys):
        code = main(
            [
                "sweep",
                "--schemes",
                "xed",
                "chipkill",
                "--fit-scales",
                "1",
                "4",
                "--scrub-hours",
                "none",
                "24",
                "--mechanisms",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.lower().count("xed") >= 4  # 2 scales x 2 scrubs
        assert "due_collision" in out
        assert "fit" in out.lower()

    def test_cli_sweep_rejects_bad_scrub(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--scrub-hours", "-3"])
        assert excinfo.value.code == 2
        assert "must be > 0" in capsys.readouterr().err
