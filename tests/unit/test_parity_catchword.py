"""Unit tests for RAID-3 parity math and catch-word management."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catch_word import CatchWordRegister, CollisionModel
from repro.core.parity import (
    parity_residue,
    reconstruct_line,
    reconstruct_word,
    verify_parity,
    xor_parity,
)

word_lists = st.lists(
    st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=8, max_size=8
)


class TestParityEquations:
    @given(words=word_lists)
    def test_equation_1_parity_cancels(self, words):
        parity = xor_parity(words)
        assert verify_parity(words, parity)
        assert parity_residue(words + [parity]) == 0

    @given(words=word_lists, chip=st.integers(0, 8))
    @settings(max_examples=200)
    def test_equation_3_reconstruction(self, words, chip):
        transfers = words + [xor_parity(words)]
        original = transfers[chip]
        transfers[chip] = 0xBAD0BAD0BAD0BAD0  # corrupt any one position
        assert reconstruct_word(transfers, chip) == original

    @given(words=word_lists)
    def test_equation_2_detects_single_corruption(self, words):
        transfers = words + [xor_parity(words)]
        transfers[3] ^= 0x1
        assert parity_residue(transfers) != 0

    def test_reconstruct_line_replaces_only_target(self):
        words = [1, 2, 3, 4, 5, 6, 7, 8]
        transfers = words + [xor_parity(words)]
        transfers[2] = 999
        fixed = reconstruct_line(transfers, 2)
        assert fixed[2] == 3
        assert fixed[:2] == [1, 2] and fixed[3:8] == [4, 5, 6, 7, 8]

    def test_reconstruct_bounds(self):
        with pytest.raises(IndexError):
            reconstruct_word([1, 2, 3], 3)


class TestCatchWordRegister:
    def test_generate_is_seeded_and_in_range(self):
        reg = CatchWordRegister(width_bits=64)
        value = reg.generate(random.Random(1))
        assert 0 <= value <= reg.mask
        again = CatchWordRegister(width_bits=64)
        assert again.generate(random.Random(1)) == value

    def test_matches_masks_width(self):
        reg = CatchWordRegister(width_bits=32)
        reg.value = 0x1234ABCD
        assert reg.matches(0x1234ABCD)
        assert not reg.matches(0x1234ABCE)

    def test_collision_rotates(self):
        reg = CatchWordRegister(width_bits=64)
        rng = random.Random(2)
        reg.generate(rng)
        old = reg.value
        reg.record_collision(rng)
        assert reg.value != old
        assert reg.collisions_seen == 1
        assert reg.rotations == 1


class TestCollisionModel:
    def test_paper_headline_numbers(self):
        x8 = CollisionModel(catch_word_bits=64)
        assert 2.5e6 < x8.mean_years_to_collision() < 4.0e6  # ~3.2M years
        x4 = CollisionModel(catch_word_bits=32)
        hours = x4.mean_years_to_collision() * 365.25 * 24
        assert 5.0 < hours < 8.5  # ~6.6 hours

    def test_stored_match_probability_is_2_pow_minus_37(self):
        model = CollisionModel(catch_word_bits=64)
        assert model.per_chip_stored_match_probability == pytest.approx(
            2.0 ** -37
        )

    def test_probability_monotone_in_time(self):
        model = CollisionModel(catch_word_bits=32)
        curve = model.probability_curve([0.001, 0.01, 0.1, 1.0, 10.0])
        probs = [p for _, p in curve]
        assert probs == sorted(probs)
        assert all(0.0 <= p <= 1.0 for p in probs)

    def test_tiny_probabilities_not_lost_to_roundoff(self):
        model = CollisionModel(catch_word_bits=64)
        p = model.collision_probability(1.0)
        assert p > 0.0  # expm1/log1p path keeps ~3e-7 alive

    def test_probability_saturates(self):
        model = CollisionModel(catch_word_bits=32)
        assert model.collision_probability(1e4) == pytest.approx(1.0)

    def test_mean_matches_probability_scale(self):
        model = CollisionModel(catch_word_bits=32)
        mean = model.mean_years_to_collision()
        # At one mean lifetime, P(collision) = 1 - 1/e.
        assert model.collision_probability(mean) == pytest.approx(
            1 - math.exp(-1), rel=0.01
        )

    def test_conservative_4ns_assumption_supported(self):
        model = CollisionModel(catch_word_bits=64, write_interval_s=4e-9)
        # 2^64 * 4ns ~ 2338 years: the raw footnote arithmetic.
        assert 2000 < model.mean_years_to_collision() < 2700

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CollisionModel(catch_word_bits=0)
        with pytest.raises(ValueError):
            CollisionModel(write_interval_s=0.0)
        with pytest.raises(ValueError):
            CollisionModel().collision_probability(-1.0)
