"""Hypothesis property suite for the performance simulator.

Four families of properties, each a structural invariant of the
memory-system model rather than a point check:

* request-stream conservation -- every memory operation the trace
  generator emits is retired exactly once, so the engine's read/write
  counters equal the trace lengths for any workload behaviour;
* FR-FCFS fairness -- row hits to the same open row are served in
  arrival (queue) order: the scheduler may prefer hits over misses but
  never reorders *within* the hit stream of a bank;
* timing monotonicity -- raising tRC (bank cycle time) and/or tRFC
  (refresh cycle time) never lowers simulated execution time;
* backend equivalence -- hypothesis-chosen workload behaviours replay
  bit-identically through the scalar and pipeline engines (cycle
  counts, command logs and power), via the differential harness.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfsim.configs import SCHEME_CONFIGS
from repro.perfsim.differential import replay_cell
from repro.perfsim.dramsys import Channel
from repro.perfsim.engine import simulate_system
from repro.perfsim.requests import MemoryRequest, RequestType
from repro.perfsim.timing import SystemTiming
from repro.perfsim.trace import build_trace_arrays
from repro.perfsim.workloads import Workload

# mpki stays strictly positive: the trace generator models the gap
# between misses as geometric with mean 1000/mpki, so mpki == 0 means
# "no memory traffic ever" (an infinite gap the engine rejects).
WORKLOADS = st.builds(
    Workload,
    name=st.just("hyp"),
    suite=st.just("SPEC"),
    mpki=st.floats(min_value=0.5, max_value=40.0),
    row_buffer_hit_rate=st.floats(min_value=0.0, max_value=1.0),
    write_fraction=st.floats(min_value=0.0, max_value=1.0),
    bank_locality=st.floats(min_value=0.0, max_value=0.9),
)

#: Scheme keys spanning the three physical geometries (4ch x 2rk,
#: lockstep 4ch x 1rk, half-channel 2ch x 1rk) plus the companion-
#: traffic schemes (XED scaling reads, LOT-ECC write companions).
GEOMETRY_SCHEMES = [
    "ecc_dimm", "xed", "xed_scaling", "chipkill", "double_chipkill",
    "lotecc",
]


class TestRequestConservation:
    @given(workload=WORKLOADS, seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_every_trace_op_is_retired_exactly_once(self, workload, seed):
        system = SystemTiming()
        result = simulate_system(
            workload, SCHEME_CONFIGS["ecc_dimm"], system,
            instructions_per_core=2000, seed=seed,
        )
        expected = sum(
            len(build_trace_arrays(
                workload, 2000, system.channels, system.ranks_per_channel,
                system.banks_per_rank, system.rows_per_bank,
                system.columns_per_row, core=core, seed=seed,
            ))
            for core in range(system.num_cores)
        )
        assert result.reads + result.writes == expected
        # ECC-DIMM adds no companion traffic, so the channel-level
        # served counters must conserve the demand stream exactly.
        assert result.companion_reads == 0 and result.companion_writes == 0
        stats = result.channel_stats
        assert stats.reads_served == result.reads
        assert stats.writes_served == result.writes

    @given(workload=WORKLOADS, seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_companion_traffic_rides_on_top_of_demand(self, workload, seed):
        result = simulate_system(
            workload, SCHEME_CONFIGS["lotecc"], SystemTiming(),
            instructions_per_core=2000, seed=seed,
        )
        # LOT-ECC issues one companion per demand write; the served
        # totals must account for demand plus companions, nothing else.
        assert result.companion_writes == result.writes
        stats = result.channel_stats
        assert (
            stats.reads_served + stats.writes_served
            == result.reads + result.writes + result.companion_writes
        )


class TestRowHitFifo:
    @given(
        offsets=st.lists(
            st.floats(min_value=0.0, max_value=50.0), min_size=2, max_size=12
        ),
        row=st.integers(0, 100),
        bank=st.integers(0, 7),
    )
    @settings(max_examples=50, deadline=None)
    def test_row_hits_complete_in_arrival_order(self, offsets, row, bank):
        channel = Channel(SystemTiming(), SCHEME_CONFIGS["ecc_dimm"], 2)
        opener = MemoryRequest(
            req_type=RequestType.READ, core=0, channel=0, rank=0,
            bank=bank, row=row, column=0, arrival=0.0,
        )
        channel.push(opener)
        completed, _ = channel.pump(0.0)
        assert len(completed) == 1
        start = completed[0][1]
        arrivals = sorted(start + off for off in offsets)
        for i, arrival in enumerate(arrivals):
            channel.push(MemoryRequest(
                req_type=RequestType.READ, core=0, channel=0, rank=0,
                bank=bank, row=row, column=1 + i % 100, arrival=arrival,
            ))
        done, wake = channel.pump(arrivals[-1])
        while wake is not None and not channel.idle:
            more, wake = channel.pump(wake)
            done.extend(more)
        # Every request is a hit on the open row; FR-FCFS must serve
        # them strictly first-come-first-served.
        served_arrivals = [req.arrival for req, _ in done]
        assert served_arrivals == arrivals
        assert channel.stats.row_hits == len(arrivals)


class TestTimingMonotonicity:
    @given(
        workload=WORKLOADS,
        scheme=st.sampled_from(GEOMETRY_SCHEMES),
        delta_rc=st.integers(0, 30),
        delta_rfc=st.integers(0, 200),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_raising_trc_trfc_never_speeds_execution(
        self, workload, scheme, delta_rc, delta_rfc, seed
    ):
        base = SystemTiming()
        slower_ddr = dataclasses.replace(
            base.ddr, tRC=base.ddr.tRC + delta_rc,
            tRFC=base.ddr.tRFC + delta_rfc,
        )
        slower = dataclasses.replace(base, ddr=slower_ddr)
        config = SCHEME_CONFIGS[scheme]
        fast = simulate_system(workload, config, base,
                               instructions_per_core=2000, seed=seed)
        slow = simulate_system(workload, config, slower,
                               instructions_per_core=2000, seed=seed)
        assert slow.exec_bus_cycles >= fast.exec_bus_cycles - 1e-9


class TestBackendEquivalence:
    @given(
        workload=WORKLOADS,
        scheme=st.sampled_from(GEOMETRY_SCHEMES),
        instructions=st.integers(500, 3000),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_backends_agree_on_random_traces(
        self, workload, scheme, instructions, seed
    ):
        # replay_cell raises PerfsimMismatch on any divergence in cycle
        # counts, counters, command logs or power.
        cert = replay_cell(
            workload, scheme, instructions_per_core=instructions, seed=seed,
        )
        assert cert.exec_bus_cycles > 0
