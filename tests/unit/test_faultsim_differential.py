"""Differential tests: scalar vs vectorized Monte-Carlo adjudication.

The scalar path is the golden model; every test here replays identical
sampled shards (or whole sharded simulations) through both backends
and requires bit-identical ``ReliabilityResult`` payloads -- failure
counts, kinds and exact failure-time floats -- for all six protection
schemes, at one and at four workers.

The closed-form ``analytical`` backend gets the statistical contract
instead (``TestAnalyticalCrossValidation``): its exact probabilities
must fall inside the Monte-Carlo Wilson score intervals, per scheme
and per quantity (total/DUE/SDC), as derived in docs/theory.md.
"""

import dataclasses
import json

import pytest

from repro.faultsim import (
    ChipkillScheme,
    DoubleChipkillScheme,
    EccDimmScheme,
    FailureKind,
    FitTable,
    MonteCarloConfig,
    NonEccScheme,
    ProtectionScheme,
    XedChipkillScheme,
    XedScheme,
    simulate,
)
from repro.faultsim.differential import (
    AnalyticalMismatch,
    DifferentialMismatch,
    DifferentialReport,
    WilsonCheck,
    _wilson,
    assert_identical,
    cross_validate_analytical,
    cross_validate_grid,
    replay_shard,
    replay_simulation,
)
from repro.faultsim.simulator import ReliabilityResult
from repro.faultsim.vectorized import (
    UnsupportedSchemeError,
    adjudicate_shard,
    validate_faultsim_backend,
)
from repro.faultsim.injector import FaultSampler

# One representative instance per scheme.  The ECC-DIMM fraction is
# pinned so the test does not re-measure the decoder profile per run.
ALL_SCHEMES = [
    NonEccScheme,
    lambda: EccDimmScheme(sdc_fraction=0.44),
    XedScheme,
    ChipkillScheme,
    DoubleChipkillScheme,
    XedChipkillScheme,
]
SCHEME_IDS = [
    "non_ecc", "ecc_dimm", "xed", "chipkill", "double_chipkill",
    "xed_chipkill",
]


def stress_config(**overrides):
    """A small population with FIT rates scaled up for failure signal."""
    defaults = dict(
        num_systems=3_000,
        seed=2016,
        fit=FitTable().scaled(30.0),
    )
    defaults.update(overrides)
    return MonteCarloConfig(**defaults)


class TestReplayShard:
    @pytest.mark.parametrize("make_scheme", ALL_SCHEMES, ids=SCHEME_IDS)
    def test_single_shard_bit_identical(self, make_scheme):
        report = replay_shard(make_scheme(), stress_config())
        assert report.failures > 0, "stress config must produce failures"

    @pytest.mark.parametrize("make_scheme", ALL_SCHEMES, ids=SCHEME_IDS)
    def test_scaling_and_scrubbing_bit_identical(self, make_scheme):
        report = replay_shard(
            make_scheme(),
            stress_config(scaling_rate=1e-2, scrub_hours=168.0, seed=7),
        )
        assert report.failures >= 0  # the assertion is inside the replay

    def test_xed_misdiagnosis_tail_bit_identical(self):
        # Exercises the SDC misdiagnosis branch, whose draws interleave
        # with the on-die-miss draws in the scalar tail loop.
        report = replay_shard(
            XedScheme(misdiagnosis_sdc_probability=5e-3),
            stress_config(seed=11),
        )
        assert report.sdc > 0, "misdiagnosis tail should produce SDCs"

    def test_nonzero_start_index_bit_identical(self):
        # Per-system RNG hashes the global index; offset shards must
        # agree too.
        replay_shard(XedScheme(), stress_config(), start_index=123_456)


class TestReplaySimulation:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("make_scheme", ALL_SCHEMES, ids=SCHEME_IDS)
    def test_full_simulation_bit_identical(self, make_scheme, workers):
        report = replay_simulation(
            make_scheme(),
            stress_config(num_systems=4_000),
            workers=workers,
            shard_size=1_000,
        )
        assert report.workers == workers

    def test_report_str_mentions_scheme(self):
        report = replay_simulation(
            XedScheme(), stress_config(num_systems=1_000), shard_size=500
        )
        assert "XED" in str(report)
        assert "bit-identical" in str(report)


class TestBackendWiring:
    def test_simulate_backends_agree_via_config(self):
        cfg = stress_config(num_systems=2_000)
        scalar = simulate(
            XedScheme(),
            dataclasses.replace(cfg, faultsim_backend="scalar"),
        )
        vectorized = simulate(
            XedScheme(),
            dataclasses.replace(cfg, faultsim_backend="vectorized"),
        )
        assert json.dumps(scalar.to_payload()) == json.dumps(
            vectorized.to_payload()
        )

    def test_default_backend_is_scalar(self):
        assert MonteCarloConfig().faultsim_backend == "scalar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="faultsim backend"):
            simulate(
                XedScheme(),
                MonteCarloConfig(num_systems=100, faultsim_backend="turbo"),
            )
        with pytest.raises(ValueError):
            validate_faultsim_backend("gpu")

    def test_custom_scheme_rejected_by_vectorized(self):
        class WeirdScheme(XedScheme):
            """Subclass with (potentially) overridden evaluate."""

        with pytest.raises(UnsupportedSchemeError, match="scalar"):
            simulate(
                WeirdScheme(),
                MonteCarloConfig(
                    num_systems=100, faultsim_backend="vectorized"
                ),
            )

    def test_adjudicate_shard_empty_population(self):
        scheme = ChipkillScheme()
        sampler = FaultSampler(scheme, FitTable(), 7 * 24 * 365)
        import numpy as np

        shard = sampler.sample_shard_arrays(
            0, 50, np.random.default_rng(0), min_faults=scheme.min_faults
        )
        adjudication = adjudicate_shard(scheme, shard, 2016)
        assert adjudication.system_indices == []
        assert adjudication.failure_times == []
        assert adjudication.kinds == []


class TestMismatchDetection:
    def make_result(self, **overrides):
        fields = dict(
            scheme_name="x",
            num_systems=100,
            years=7.0,
            failure_times_hours=[1.0, 2.0],
            kinds=[FailureKind.DUE, FailureKind.SDC],
        )
        fields.update(overrides)
        return ReliabilityResult(**fields)

    def test_identical_results_pass(self):
        assert_identical(self.make_result(), self.make_result(), "ctx")

    def test_population_mismatch_raises(self):
        with pytest.raises(DifferentialMismatch, match="population"):
            assert_identical(
                self.make_result(),
                self.make_result(num_systems=101),
                "ctx",
            )

    def test_count_mismatch_raises(self):
        with pytest.raises(DifferentialMismatch, match="failure count"):
            assert_identical(
                self.make_result(),
                self.make_result(
                    failure_times_hours=[1.0], kinds=[FailureKind.DUE]
                ),
                "ctx",
            )

    def test_kind_mismatch_raises(self):
        with pytest.raises(DifferentialMismatch, match="kind mismatch"):
            assert_identical(
                self.make_result(),
                self.make_result(kinds=[FailureKind.DUE, FailureKind.DUE]),
                "ctx",
            )

    def test_time_mismatch_raises(self):
        with pytest.raises(DifferentialMismatch, match="time mismatch"):
            assert_identical(
                self.make_result(),
                self.make_result(failure_times_hours=[1.0, 2.0 + 1e-12]),
                "ctx",
            )

    def test_payload_mismatch_raises(self):
        # scheme_name is not field-compared, but it is serialised: a
        # pair differing only there survives the field checks and must
        # be caught by the canonical-payload comparison.
        with pytest.raises(DifferentialMismatch, match="payload JSON"):
            assert_identical(
                self.make_result(scheme_name="x"),
                self.make_result(scheme_name="y"),
                "ctx",
            )

    def test_int_years_normalised_at_construction(self):
        # LIFETIME_YEARS is the int 7; construction must coerce so a
        # fresh result and a checkpoint-rehydrated one serialise the
        # same payload bytes (cross-backend --resume relies on it).
        fresh = self.make_result(years=7)
        rehydrated = self.make_result(years=7.0)
        assert json.dumps(fresh.to_payload()) == json.dumps(
            rehydrated.to_payload()
        )

    def test_report_is_frozen(self):
        report = DifferentialReport("x", 1, 0, 0, 0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            report.failures = 5


class TestWilsonInterval:
    """The statistical primitive behind the analytical contract."""

    def test_matches_result_confidence_interval(self):
        result = ReliabilityResult(
            scheme_name="x",
            num_systems=5_000,
            years=7.0,
            failure_times_hours=[1.0] * 37,
            kinds=[FailureKind.DUE] * 37,
        )
        assert _wilson(37, 5_000) == pytest.approx(
            result.confidence_interval(), rel=1e-12
        )

    def test_zero_successes_contains_zero(self):
        low, high = _wilson(0, 10_000)
        assert low == 0.0 and 0.0 < high < 1e-3

    def test_interval_narrows_with_population(self):
        low_n = _wilson(10, 1_000)
        high_n = _wilson(100, 10_000)
        assert (high_n[1] - high_n[0]) < (low_n[1] - low_n[0])

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            _wilson(0, 0)

    def test_check_inside_and_str(self):
        inside = WilsonCheck(
            scheme_name="XED",
            quantity="total",
            analytical=0.01,
            monte_carlo=0.011,
            ci_low=0.009,
            ci_high=0.013,
            num_systems=100_000,
        )
        outside = dataclasses.replace(inside, analytical=0.02)
        assert inside.inside and not outside.inside
        assert "total" in str(inside) and "XED" in str(inside)


class TestAnalyticalCrossValidation:
    """The analytical solver vs Monte-Carlo, per the theory.md contract.

    These are the acceptance checks for the ``analytical`` backend:
    for every scheme the closed-form total/DUE/SDC probabilities must
    sit inside the Wilson score interval of a 200K-system vectorized
    Monte-Carlo run of the identical configuration.
    """

    CONFIG = MonteCarloConfig(num_systems=200_000, seed=2016)

    @pytest.mark.parametrize(
        "make_scheme", ALL_SCHEMES, ids=SCHEME_IDS
    )
    def test_all_schemes_within_wilson(self, make_scheme):
        checks = cross_validate_analytical(make_scheme(), self.CONFIG)
        assert len(checks) == 3  # total, due, sdc
        assert all(c.inside for c in checks)

    def test_grid_fit_scales(self):
        checks = cross_validate_grid(
            [ChipkillScheme()], self.CONFIG, fit_scales=(1.0, 4.0)
        )
        assert {c.fit_scale for c in checks} == {1.0, 4.0}
        assert all(c.inside for c in checks)

    def test_scrubbed_cell_within_wilson(self):
        config = dataclasses.replace(self.CONFIG, scrub_hours=168.0)
        checks = cross_validate_analytical(XedScheme(), config)
        assert all(c.scrub_hours == 168.0 for c in checks)
        assert all(c.inside for c in checks)

    def test_mismatch_lists_violations(self):
        # A near-zero z collapses the interval to the Monte-Carlo
        # point estimate, which the exact solver will not hit --
        # exercising the failure path that reports which quantities
        # fell outside their intervals.
        small = dataclasses.replace(
            self.CONFIG,
            num_systems=20_000,
            fit=self.CONFIG.fit.scaled(10.0),
        )
        with pytest.raises(AnalyticalMismatch) as excinfo:
            cross_validate_analytical(ChipkillScheme(), small, z=1e-9)
        assert "Wilson" in str(excinfo.value)
