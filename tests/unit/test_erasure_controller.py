"""Unit tests for XED on Chipkill hardware (Section IX)."""

import random

import pytest

from repro.core import ReadStatus, XedChipkillController
from repro.dram.chip import FaultGranularity
from repro.dram.dimm import ChipkillRank
from repro.dram.geometry import ChipGeometry

LINE16 = [0xA000 + i for i in range(16)]


def system(seed=1, device_width=8, scaling=0.0):
    rank = ChipkillRank(
        seed=seed,
        geometry=ChipGeometry(device_width=device_width),
        scaling_ber=scaling,
    )
    return rank, XedChipkillController(rank, seed=seed + 5)


class TestProvisioning:
    def test_catch_word_width_tracks_device(self):
        _, ctrl8 = system(1, device_width=8)
        _, ctrl4 = system(2, device_width=4)
        assert ctrl8.registers[0].width_bits == 64
        assert ctrl4.registers[0].width_bits == 32

    def test_all_18_chips_provisioned(self):
        rank, ctrl = system(3)
        assert len(ctrl.catch_words) == 18
        assert all(chip.regs.xed_enable for chip in rank.chips)


class TestReadPaths:
    def test_clean(self):
        _, ctrl = system(4)
        ctrl.write_line(0, 0, 0, LINE16)
        result = ctrl.read_line(0, 0, 0)
        assert result.status is ReadStatus.CLEAN
        assert result.words == LINE16

    def test_single_chip_failure(self):
        rank, ctrl = system(5)
        ctrl.write_line(0, 1, 2, LINE16)
        rank.inject_chip_failure(chip=7)
        result = ctrl.read_line(0, 1, 2)
        assert result.ok and result.words == LINE16
        assert 7 in result.catch_word_chips

    def test_double_chip_failure_the_section_ix_claim(self):
        rank, ctrl = system(6)
        ctrl.write_line(0, 0, 5, LINE16)
        rank.inject_chip_failure(chip=3, seed=1)
        rank.inject_chip_failure(chip=12, seed=2)
        result = ctrl.read_line(0, 0, 5)
        assert result.status is ReadStatus.CORRECTED_ERASURE
        assert result.words == LINE16
        assert set(result.catch_word_chips) == {3, 12}

    def test_double_failure_including_check_chips(self):
        rank, ctrl = system(7)
        ctrl.write_line(0, 0, 0, LINE16)
        rank.inject_chip_failure(chip=16, seed=1)  # check chip
        rank.inject_chip_failure(chip=17, seed=2)  # check chip
        result = ctrl.read_line(0, 0, 0)
        assert result.ok and result.words == LINE16

    def test_every_chip_pair_recoverable_sampled(self):
        rng = random.Random(9)
        for trial in range(10):
            rank, ctrl = system(100 + trial)
            ctrl.write_line(0, 0, 0, LINE16)
            a, b = rng.sample(range(18), 2)
            rank.inject_chip_failure(chip=a, seed=1)
            rank.inject_chip_failure(chip=b, seed=2)
            result = ctrl.read_line(0, 0, 0)
            assert result.ok and result.words == LINE16, (a, b)

    def test_triple_chip_failure_is_due(self):
        rank, ctrl = system(8)
        ctrl.write_line(0, 0, 0, LINE16)
        for chip, s in ((1, 1), (8, 2), (15, 3)):
            rank.inject_chip_failure(chip=chip, seed=s)
        result = ctrl.read_line(0, 0, 0)
        assert result.status is ReadStatus.DUE
        assert ctrl.stats["dues"] >= 1

    def test_stats_track_corrections(self):
        rank, ctrl = system(10)
        ctrl.write_line(0, 0, 0, LINE16)
        rank.inject_chip_failure(chip=0)
        ctrl.read_line(0, 0, 0)
        assert ctrl.stats["erasure_corrections"] == 1
        assert ctrl.stats["catch_words_seen"] == 1


class TestCollisions:
    def test_data_matching_catch_word_still_correct(self):
        _, ctrl = system(11)
        line = list(LINE16)
        line[4] = ctrl.catch_words[4]  # legitimate data == catch-word
        ctrl.write_line(0, 0, 1, line)
        result = ctrl.read_line(0, 0, 1)
        assert result.words == line
        assert result.collision
        assert ctrl.stats["collisions"] == 1
        assert ctrl.catch_words[4] != line[4]  # rotated

    def test_after_rotation_reads_clean(self):
        _, ctrl = system(12)
        line = list(LINE16)
        line[2] = ctrl.catch_words[2]
        ctrl.write_line(0, 0, 2, line)
        ctrl.read_line(0, 0, 2)
        result = ctrl.read_line(0, 0, 2)
        assert result.status is ReadStatus.CLEAN and result.words == line


class TestScalingInterplay:
    def test_many_scaling_catch_words_serial_mode(self):
        rank, ctrl = system(13, scaling=8e-3)
        target = None
        for col in range(128):
            weak = [
                i for i, chip in enumerate(rank.chips)
                if chip.weak_bit(0, 0, col) is not None
            ]
            if len(weak) > rank.check_chips:
                target = col
                break
        if target is None:
            pytest.skip("no suitably weak column at this seed")
        ctrl.write_line(0, 0, target, LINE16)
        result = ctrl.read_line(0, 0, target)
        assert result.ok and result.words == LINE16
        assert result.serial_mode
        assert ctrl.stats["serial_mode_entries"] >= 1
