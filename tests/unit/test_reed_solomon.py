"""Unit tests for the Reed-Solomon codec: Chipkill's correction engine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.gf import GF16
from repro.ecc.reed_solomon import ReedSolomonCode, RSDecodeFailure

symbols16 = st.lists(
    st.integers(min_value=0, max_value=255), min_size=16, max_size=16
)


@pytest.fixture(scope="module")
def rs():
    return ReedSolomonCode.chipkill(16)


@pytest.fixture(scope="module")
def rs4():
    return ReedSolomonCode.double_chipkill(32)


class TestConstruction:
    def test_chipkill_shape(self, rs):
        assert (rs.n, rs.k, rs.num_check, rs.t) == (18, 16, 2, 1)

    def test_double_chipkill_shape(self, rs4):
        assert (rs4.n, rs4.k, rs4.num_check, rs4.t) == (36, 32, 4, 2)

    def test_generator_degree(self, rs, rs4):
        assert len(rs.generator) == 3
        assert len(rs4.generator) == 5

    def test_generator_roots(self, rs4):
        gf = rs4.field
        for i in range(rs4.num_check):
            assert gf.poly_eval(rs4.generator, gf.alpha_pow(rs4.fcr + i)) == 0

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(300, 16)  # n > field order
        with pytest.raises(ValueError):
            ReedSolomonCode(10, 10)
        with pytest.raises(ValueError):
            ReedSolomonCode(10, 0)

    def test_small_field_code(self):
        rs = ReedSolomonCode(15, 11, field=GF16)
        data = [i % 16 for i in range(11)]
        cw = rs.encode(data)
        bad = list(cw)
        bad[3] ^= 0x9
        assert rs.decode(bad).data == data


class TestEncode:
    @given(data=symbols16)
    @settings(max_examples=100)
    def test_encode_is_systematic_and_valid(self, rs, data):
        cw = rs.encode(data)
        assert cw[:16] == data
        assert rs.is_codeword(cw)

    def test_encode_rejects_wrong_length(self, rs):
        with pytest.raises(ValueError):
            rs.encode([0] * 15)

    def test_encode_rejects_out_of_range_symbol(self, rs):
        with pytest.raises(ValueError):
            rs.encode([0] * 15 + [256])

    def test_linear_code_zero_word(self, rs):
        assert rs.encode([0] * 16) == [0] * 18


class TestErrorCorrection:
    @given(
        data=symbols16,
        pos=st.integers(min_value=0, max_value=17),
        err=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=150)
    def test_single_symbol_error_corrected(self, rs, data, pos, err):
        bad = rs.encode(data)
        bad[pos] ^= err
        result = rs.decode(bad)
        assert result.data == data
        assert result.detected
        assert result.error_positions == [pos]

    def test_clean_decode_reports_no_errors(self, rs):
        cw = rs.encode(list(range(16)))
        result = rs.decode(cw)
        assert not result.detected
        assert result.error_positions == []

    def test_double_error_mostly_detected(self, rs):
        """With r=2 the single-codeword distance is 3, so a double error
        is *usually* detected but can occasionally land within distance
        1 of another codeword and miscorrect.  (Rank-level chipkill gets
        its double-detect guarantee from the same chip positions failing
        in all eight beats -- covered in test_dimm.)  Pin the contract:
        detection dominates, and any miscorrection yields a valid
        codeword, never garbage."""
        rng = random.Random(5)
        detected = 0
        trials = 300
        for _ in range(trials):
            data = [rng.randrange(256) for _ in range(16)]
            bad = rs.encode(data)
            p1, p2 = rng.sample(range(18), 2)
            bad[p1] ^= rng.randrange(1, 256)
            bad[p2] ^= rng.randrange(1, 256)
            try:
                result = rs.decode(bad)
            except RSDecodeFailure:
                detected += 1
                continue
            assert result.data != data or result.error_positions
            assert rs.is_codeword(result.codeword)
        assert detected > 0.85 * trials

    @given(data=st.lists(st.integers(0, 255), min_size=32, max_size=32))
    @settings(max_examples=60)
    def test_double_chipkill_corrects_two_errors(self, rs4, data):
        rng = random.Random(sum(data))
        bad = rs4.encode(data)
        p1, p2 = rng.sample(range(36), 2)
        bad[p1] ^= rng.randrange(1, 256)
        bad[p2] ^= rng.randrange(1, 256)
        result = rs4.decode(bad)
        assert result.data == data
        assert set(result.error_positions) == {p1, p2}

    def test_triple_error_fails_double_chipkill(self, rs4):
        rng = random.Random(9)
        failures = 0
        for _ in range(100):
            data = [rng.randrange(256) for _ in range(32)]
            bad = rs4.encode(data)
            for pos in rng.sample(range(36), 3):
                bad[pos] ^= rng.randrange(1, 256)
            try:
                result = rs4.decode(bad)
                # A rare miscorrection to a *valid but wrong* codeword is
                # information-theoretically possible; it must at least be
                # a valid codeword.
                assert rs4.is_codeword(result.codeword)
            except RSDecodeFailure:
                failures += 1
        assert failures > 50  # the vast majority are detected


class TestErasures:
    @given(data=symbols16)
    @settings(max_examples=80)
    def test_two_erasures_corrected_with_two_checks(self, rs, data):
        """XED's Section IX trick: 2 check symbols fix 2 *located* chips."""
        rng = random.Random(sum(data) + 1)
        bad = rs.encode(data)
        p1, p2 = rng.sample(range(18), 2)
        bad[p1] ^= rng.randrange(1, 256)
        bad[p2] ^= rng.randrange(1, 256)
        result = rs.decode(bad, erasures=[p1, p2])
        assert result.data == data

    def test_erasure_position_holding_correct_data(self, rs):
        data = list(range(16))
        cw = rs.encode(data)
        # Erase a chip that actually sent correct data (catch-word
        # collision case): decode must still return the right values.
        result = rs.decode(cw, erasures=[3])
        assert result.data == data

    def test_one_erasure_plus_one_error_fails_two_checks(self, rs):
        # e + 2v = 3 > 2: the XED+Chipkill DUE tail of Section IX.
        rng = random.Random(11)
        detected = 0
        for _ in range(100):
            data = [rng.randrange(256) for _ in range(16)]
            bad = rs.encode(data)
            p1, p2 = rng.sample(range(18), 2)
            bad[p1] ^= rng.randrange(1, 256)
            bad[p2] ^= rng.randrange(1, 256)
            try:
                result = rs.decode(bad, erasures=[p1])  # p2 unknown
                if result.data != data:
                    detected += 1  # produced wrong data (counts as fail)
            except RSDecodeFailure:
                detected += 1
        assert detected > 50

    def test_too_many_erasures_rejected(self, rs):
        cw = rs.encode(list(range(16)))
        with pytest.raises(RSDecodeFailure):
            rs.decode(cw, erasures=[0, 1, 2])

    def test_invalid_erasure_position(self, rs):
        cw = rs.encode(list(range(16)))
        with pytest.raises(ValueError):
            rs.decode(cw, erasures=[18])

    def test_single_erasure_with_wrong_value(self, rs):
        """Regression: 1 erasure + 0 errors with r=2 (an XED chip
        failure under Section IX) once tripped a Berlekamp-Massey
        offset bug -- the Forney-syndrome suffix must start at index e."""
        rng = random.Random(17)
        for _ in range(200):
            data = [rng.randrange(256) for _ in range(16)]
            bad = rs.encode(data)
            pos = rng.randrange(18)
            bad[pos] ^= rng.randrange(1, 256)
            assert rs.decode(bad, erasures=[pos]).data == data

    def test_full_erasure_error_envelope(self, rs4):
        """Every (e, v) with 2v + e <= 4 must decode."""
        rng = random.Random(19)
        for e in range(0, 5):
            for v in range((4 - e) // 2 + 1):
                for _ in range(40):
                    data = [rng.randrange(256) for _ in range(32)]
                    bad = rs4.encode(data)
                    pos = rng.sample(range(36), e + v)
                    for p in pos:
                        bad[p] ^= rng.randrange(1, 256)
                    result = rs4.decode(bad, erasures=pos[:e])
                    assert result.data == data, (e, v)

    def test_four_erasures_with_four_checks(self, rs4):
        rng = random.Random(13)
        data = [rng.randrange(256) for _ in range(32)]
        bad = rs4.encode(data)
        positions = rng.sample(range(36), 4)
        for pos in positions:
            bad[pos] ^= rng.randrange(1, 256)
        result = rs4.decode(bad, erasures=positions)
        assert result.data == data


class TestInputValidation:
    def test_decode_wrong_length(self, rs):
        with pytest.raises(ValueError):
            rs.decode([0] * 17)
