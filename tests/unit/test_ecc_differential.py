"""Exhaustive scalar-vs-batched differential verification.

The acceptance bar for the batched kernels: for a fixed data word, every
one of the 72 single-bit and all C(72,2) = 2556 double-bit error
patterns must produce *bit-identical* decode results through both
backends -- outcome class, decoded data, and corrected-bit index -- plus
randomized multi-bit batches on top.  These are deliberately exhaustive,
not sampled: the spaces are small enough to enumerate, so we do.
"""

import itertools
import random

import numpy as np
import pytest

from repro.ecc.batched import BatchOutcome
from repro.ecc.differential import (
    DifferentialMismatch,
    replay_decode,
    replay_encode,
    replay_roundtrip,
)

FIXED_DATA = 0xFEDC_BA98_7654_3210


class TestExhaustiveSingleBit:
    def test_all_72_single_bit_patterns(self, secded_code):
        patterns = [1 << b for b in range(72)]
        report = replay_roundtrip(
            secded_code, [FIXED_DATA] * len(patterns), patterns
        )
        assert report.words == 72
        # Every single-bit error must be corrected -- by both backends.
        assert report.outcome_counts == {BatchOutcome.CORRECTED.name: 72}


class TestExhaustiveDoubleBit:
    def test_all_2556_double_bit_patterns(self, secded_code):
        patterns = [
            (1 << b1) | (1 << b2)
            for b1, b2 in itertools.combinations(range(72), 2)
        ]
        assert len(patterns) == 2556
        report = replay_roundtrip(
            secded_code, [FIXED_DATA] * len(patterns), patterns
        )
        assert report.words == 2556
        # SECDED at length 72: every double error detected, none aliased.
        assert report.outcome_counts == {
            BatchOutcome.DETECTED_UNCORRECTABLE.name: 2556
        }


class TestRandomizedMultiBit:
    @pytest.mark.parametrize("weight", [3, 4, 5, 8])
    def test_random_weighted_batches(self, secded_code, weight):
        rng = random.Random(1000 + weight)
        data = [rng.getrandbits(64) for _ in range(400)]
        patterns = [
            sum(1 << b for b in rng.sample(range(72), weight))
            for _ in range(400)
        ]
        report = replay_roundtrip(secded_code, data, patterns)
        assert report.words == 400

    def test_random_noise_words(self, secded_code):
        """Arbitrary 72-bit words, not just corrupted codewords."""
        rng = random.Random(77)
        words = [rng.getrandbits(72) for _ in range(500)]
        report = replay_decode(secded_code, words)
        assert report.words == 500
        assert sum(report.outcome_counts.values()) == 500

    def test_clean_roundtrip(self, secded_code):
        rng = random.Random(78)
        data = [rng.getrandbits(64) for _ in range(200)]
        report = replay_roundtrip(secded_code, data)
        assert report.outcome_counts == {BatchOutcome.NO_ERROR.name: 200}


class TestHarnessMechanics:
    def test_replay_encode_returns_codewords(self, secded_code):
        words = replay_encode(secded_code, [0, 1, FIXED_DATA])
        assert words == [
            secded_code.encode(0),
            secded_code.encode(1),
            secded_code.encode(FIXED_DATA),
        ]

    def test_pattern_length_mismatch(self, secded_code):
        with pytest.raises(ValueError):
            replay_roundtrip(secded_code, [1, 2, 3], [0, 0])

    def test_mismatch_is_raised_on_divergent_backends(self, secded_code):
        """Sabotage the batched kernel; the harness must notice."""
        batched = secded_code.batched()
        lut = batched.matrices.syndrome_lut.copy()
        # Swap two correctable entries so the batched decoder flips the
        # wrong bit for those syndromes.
        hot = np.nonzero(lut >= 0)[0][:2]
        lut[hot[0]], lut[hot[1]] = lut[hot[1]], lut[hot[0]]
        sabotaged = object.__new__(type(batched))
        sabotaged.__dict__.update(batched.__dict__)
        sabotaged.matrices = type(batched.matrices)(
            n=batched.matrices.n,
            k=batched.matrices.k,
            G=batched.matrices.G,
            H=batched.matrices.H,
            syndrome_lut=lut,
            data_columns=batched.matrices.data_columns,
        )
        patterns = [1 << b for b in range(72)]
        with pytest.raises(DifferentialMismatch):
            replay_roundtrip(
                secded_code,
                [FIXED_DATA] * 72,
                patterns,
                batched=sabotaged,
            )

    def test_report_str_mentions_code_and_counts(self, secded_code):
        report = replay_roundtrip(secded_code, [FIXED_DATA], [1])
        text = str(report)
        assert type(secded_code).__name__ in text
        assert "CORRECTED=1" in text
