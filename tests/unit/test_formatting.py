"""Unit tests for result formatting and the reproduce-all driver."""

import pytest

from repro.analysis import reproduce_all
from repro.analysis.formatting import format_reliability_table, format_series
from repro.faultsim.schemes import FailureKind
from repro.faultsim.simulator import ReliabilityResult


def fake_result(name: str, failures: int, n: int = 1000) -> ReliabilityResult:
    times = [float(100 * (i + 1)) for i in range(failures)]
    return ReliabilityResult(
        name, n, 7, times, [FailureKind.DUE] * failures
    )


class TestFormatSeries:
    def test_aligned_table(self):
        series = {
            "A": [(1, 0.1), (2, 0.2)],
            "B": [(1, 0.01), (2, 0.02)],
        }
        text = format_series("Title", series)
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "A" in lines[1] and "B" in lines[1]
        assert len(lines) == 4  # title + header + 2 rows

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            format_series("T", {})


class TestFormatReliabilityTable:
    def test_ratios_against_baseline(self):
        base = fake_result("base", 100)
        better = fake_result("better", 10)
        text = format_reliability_table("T", [base, better], "base")
        assert "10.0x vs base" in text

    def test_without_baseline(self):
        text = format_reliability_table("T", [fake_result("only", 5)])
        assert "only" in text and "x vs" not in text


class TestReproduceAll:
    def test_subset_run(self):
        reports = reproduce_all(
            scale="quick", experiment_ids=["table1", "fig6"]
        )
        assert set(reports) == {"table1", "fig6"}
        assert reports["fig6"].data["x8_mean_years"] == pytest.approx(
            3.2e6, rel=0.05
        )

    def test_unknown_id_propagates(self):
        with pytest.raises(KeyError):
            reproduce_all(experiment_ids=["fig99"])
