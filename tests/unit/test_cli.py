"""Unit tests for the command-line interface."""

import pytest

from repro.cli import RELIABILITY_SCHEMES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_scheme_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reliability", "--schemes", "magic"])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment", "fig7"])
        assert args.scale == "quick" and args.seed == 2016


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig1", "fig7", "fig11", "table2", "table4"):
            assert exp_id in out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "catch-words" in out.lower()

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_collision_x4(self, capsys):
        assert main(["collision", "--bits", "32"]) == 0
        out = capsys.readouterr().out
        assert "32 bits" in out
        hours = float(out.split("(")[1].split(" hours")[0])
        assert hours == pytest.approx(6.6, rel=0.05)  # the paper's figure

    def test_reliability_small_run(self, capsys):
        code = main([
            "reliability", "--schemes", "ecc_dimm", "xed",
            "--systems", "20000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "XED (9 chips)" in out and "P(fail" in out

    def test_perf_small_run(self, capsys):
        code = main([
            "perf", "--workloads", "gcc", "--schemes", "xed",
            "--instructions", "5000", "--metric", "time",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Normalized Execution Time" in out and "gcc" in out

    def test_campaign_clean_exit(self, capsys):
        code = main(["campaign", "--kind", "xed", "--trials", "3"])
        assert code == 0
        assert "scenarios" in capsys.readouterr().out

    def test_scheme_registry_matches_faultsim(self):
        import repro.faultsim as fs

        for class_name in RELIABILITY_SCHEMES.values():
            assert hasattr(fs, class_name)
