"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_SHARD_FAILURE,
    EXIT_USAGE,
    RELIABILITY_SCHEMES,
    build_parser,
    main,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_scheme_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reliability", "--schemes", "magic"])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment", "fig7"])
        assert args.scale == "quick" and args.seed == 2016


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig1", "fig7", "fig11", "table2", "table4"):
            assert exp_id in out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "catch-words" in out.lower()

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_collision_x4(self, capsys):
        assert main(["collision", "--bits", "32"]) == 0
        out = capsys.readouterr().out
        assert "32 bits" in out
        hours = float(out.split("(")[1].split(" hours")[0])
        assert hours == pytest.approx(6.6, rel=0.05)  # the paper's figure

    def test_reliability_small_run(self, capsys):
        code = main([
            "reliability", "--schemes", "ecc_dimm", "xed",
            "--systems", "20000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "XED (9 chips)" in out and "P(fail" in out

    def test_perf_small_run(self, capsys):
        code = main([
            "perf", "--workloads", "gcc", "--schemes", "xed",
            "--instructions", "5000", "--metric", "time",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Normalized Execution Time" in out and "gcc" in out

    def test_campaign_clean_exit(self, capsys):
        code = main(["campaign", "--kind", "xed", "--trials", "3"])
        assert code == 0
        assert "scenarios" in capsys.readouterr().out

    def test_scheme_registry_matches_faultsim(self):
        import repro.faultsim as fs

        for class_name in RELIABILITY_SCHEMES.values():
            assert hasattr(fs, class_name)


class TestParallelFlags:
    def test_workers_zero_rejected_with_clean_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["reliability", "--schemes", "xed", "--workers", "0"]
            )
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--workers" in err and "must be >= 1" in err
        assert "Traceback" not in err

    def test_workers_negative_rejected(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["campaign", "--kind", "xed", "--workers", "-3"]
            )
        assert exc.value.code == 2

    def test_workers_non_numeric_rejected(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["reliability", "--schemes", "xed", "--workers", "lots"]
            )
        assert exc.value.code == 2

    def test_shard_size_zero_rejected(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["reliability", "--schemes", "xed", "--shard-size", "0"]
            )
        assert exc.value.code == 2

    def test_workers_default_is_sequential(self):
        args = build_parser().parse_args(["reliability", "--schemes", "xed"])
        assert args.workers == 1 and args.shard_size is None

    def test_reliability_with_workers_smoke(self, capsys):
        code = main([
            "reliability", "--schemes", "xed",
            "--systems", "20000", "--workers", "2", "--shard-size", "10000",
        ])
        assert code == 0
        assert "XED (9 chips)" in capsys.readouterr().out

    def test_campaign_with_workers_smoke(self, capsys):
        code = main([
            "campaign", "--kind", "xed", "--trials", "4",
            "--workers", "2", "--shard-size", "2",
        ])
        assert code == 0
        assert "scenarios" in capsys.readouterr().out


#: One small reliability run, reused by the exit-code tests below.
RELIABILITY_ARGS = [
    "reliability", "--schemes", "xed",
    "--systems", "20000", "--shard-size", "5000",
]


class TestExitCodes:
    """The documented exit-code contract (docs/robustness.md)."""

    def test_exit_code_values_are_the_documented_contract(self):
        assert (EXIT_OK, EXIT_USAGE, EXIT_PARTIAL, EXIT_SHARD_FAILURE,
                EXIT_INTERRUPTED) == (0, 2, 3, 4, 130)

    def test_usage_error_is_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["reliability", "--shard-timeout", "-1"])
        assert exc.value.code == EXIT_USAGE

    def test_unknown_experiment_is_2(self):
        assert main(["experiment", "fig99"]) == EXIT_USAGE

    def test_bad_chaos_spec_is_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(RELIABILITY_ARGS + ["--chaos", "explode=everything"])
        assert exc.value.code == EXIT_USAGE
        assert "chaos" in capsys.readouterr().err

    def test_fingerprint_mismatch_is_2(self, tmp_path, capsys):
        assert main(
            RELIABILITY_ARGS + ["--checkpoint", str(tmp_path)]
        ) == EXIT_OK
        capsys.readouterr()
        code = main([
            "reliability", "--schemes", "xed",
            "--systems", "25000", "--shard-size", "5000",
            "--resume", str(tmp_path),
        ])
        assert code == EXIT_USAGE
        assert "different run" in capsys.readouterr().err

    def test_shard_failure_is_4_and_prints_resume_command(
        self, tmp_path, capsys
    ):
        code = main(RELIABILITY_ARGS + [
            "--checkpoint", str(tmp_path),
            "--chaos", "fault=1;attempts=99", "--max-retries", "1",
        ])
        assert code == EXIT_SHARD_FAILURE
        err = capsys.readouterr().err
        assert "--resume" in err and str(tmp_path) in err
        assert "--keep-going" in err

    def test_keep_going_partial_is_3_with_completeness(self, capsys):
        code = main(RELIABILITY_ARGS + [
            "--chaos", "fault=1;attempts=99", "--max-retries", "1",
            "--keep-going",
        ])
        assert code == EXIT_PARTIAL
        err = capsys.readouterr().err
        assert "quarantined" in err and "completeness" in err

    def test_recovered_run_exits_0(self, capsys):
        code = main(RELIABILITY_ARGS + ["--chaos", "fault=1"])
        assert code == EXIT_OK


class TestRuntimeFlags:
    def test_runtime_flags_on_long_running_commands(self):
        for argv in (
            ["experiment", "fig7", "--checkpoint", "ck"],
            ["reliability", "--checkpoint", "ck"],
            ["all", "--checkpoint", "ck"],
            ["campaign", "--checkpoint", "ck"],
        ):
            assert build_parser().parse_args(argv).checkpoint == "ck"

    def test_runtime_flags_default_to_legacy_path(self):
        from repro.cli import _build_runtime_policy

        args = build_parser().parse_args(["reliability"])
        assert _build_runtime_policy(args) is None

    def test_checkpoint_resume_output_identical(self, tmp_path, capsys):
        assert main(RELIABILITY_ARGS) == EXIT_OK
        plain_out = capsys.readouterr().out
        assert main(
            RELIABILITY_ARGS + ["--checkpoint", str(tmp_path)]
        ) == EXIT_OK
        checkpointed_out = capsys.readouterr().out
        assert main(
            RELIABILITY_ARGS + ["--resume", str(tmp_path)]
        ) == EXIT_OK
        resumed_out = capsys.readouterr().out
        assert plain_out == checkpointed_out == resumed_out

    def test_export_writes_provenance(self, tmp_path, capsys):
        code = main([
            "export", "table3", "--out", str(tmp_path / "results"),
        ])
        assert code == EXIT_OK
        prov_path = tmp_path / "results" / "table3_provenance.json"
        assert prov_path.exists()
        prov = json.loads(prov_path.read_text())
        assert prov["complete"] is True and prov["runs"] == []

    def test_export_provenance_records_partial_runs(self, tmp_path, capsys):
        code = main([
            "export", "fig7", "--out", str(tmp_path / "results"),
            "--chaos", "fault=0;attempts=99", "--max-retries", "0",
            "--keep-going",
        ])
        assert code == EXIT_PARTIAL
        prov = json.loads(
            (tmp_path / "results" / "fig7_provenance.json").read_text()
        )
        assert prov["complete"] is False
        assert any(run["quarantined_shards"] for run in prov["runs"])


class TestEccBackendFlag:
    def test_default_is_scalar(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.ecc_backend == "scalar"

    def test_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["experiment", "table2", "--ecc-backend", "simd"]
            )

    def test_flag_present_on_reliability_all_export(self):
        for argv in (
            ["reliability", "--ecc-backend", "batched"],
            ["all", "--ecc-backend", "batched"],
            ["export", "table2", "--ecc-backend", "batched"],
        ):
            assert build_parser().parse_args(argv).ecc_backend == "batched"

    def test_experiment_table2_batched_runs(self, capsys):
        assert main(
            ["experiment", "table2", "--ecc-backend", "batched"]
        ) == 0
        out = capsys.readouterr().out
        assert "Detection-rate" in out

    def test_reliability_batched_matches_scalar(self, capsys):
        argv = ["reliability", "--schemes", "ecc_dimm", "--systems", "20000"]
        assert main(argv) == 0
        scalar_out = capsys.readouterr().out
        assert main(argv + ["--ecc-backend", "batched"]) == 0
        batched_out = capsys.readouterr().out
        assert scalar_out == batched_out
