"""Unit tests for the command-line interface."""

import pytest

from repro.cli import RELIABILITY_SCHEMES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_scheme_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reliability", "--schemes", "magic"])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment", "fig7"])
        assert args.scale == "quick" and args.seed == 2016


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig1", "fig7", "fig11", "table2", "table4"):
            assert exp_id in out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "catch-words" in out.lower()

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_collision_x4(self, capsys):
        assert main(["collision", "--bits", "32"]) == 0
        out = capsys.readouterr().out
        assert "32 bits" in out
        hours = float(out.split("(")[1].split(" hours")[0])
        assert hours == pytest.approx(6.6, rel=0.05)  # the paper's figure

    def test_reliability_small_run(self, capsys):
        code = main([
            "reliability", "--schemes", "ecc_dimm", "xed",
            "--systems", "20000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "XED (9 chips)" in out and "P(fail" in out

    def test_perf_small_run(self, capsys):
        code = main([
            "perf", "--workloads", "gcc", "--schemes", "xed",
            "--instructions", "5000", "--metric", "time",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Normalized Execution Time" in out and "gcc" in out

    def test_campaign_clean_exit(self, capsys):
        code = main(["campaign", "--kind", "xed", "--trials", "3"])
        assert code == 0
        assert "scenarios" in capsys.readouterr().out

    def test_scheme_registry_matches_faultsim(self):
        import repro.faultsim as fs

        for class_name in RELIABILITY_SCHEMES.values():
            assert hasattr(fs, class_name)


class TestParallelFlags:
    def test_workers_zero_rejected_with_clean_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["reliability", "--schemes", "xed", "--workers", "0"]
            )
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--workers" in err and "must be >= 1" in err
        assert "Traceback" not in err

    def test_workers_negative_rejected(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["campaign", "--kind", "xed", "--workers", "-3"]
            )
        assert exc.value.code == 2

    def test_workers_non_numeric_rejected(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["reliability", "--schemes", "xed", "--workers", "lots"]
            )
        assert exc.value.code == 2

    def test_shard_size_zero_rejected(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["reliability", "--schemes", "xed", "--shard-size", "0"]
            )
        assert exc.value.code == 2

    def test_workers_default_is_sequential(self):
        args = build_parser().parse_args(["reliability", "--schemes", "xed"])
        assert args.workers == 1 and args.shard_size is None

    def test_reliability_with_workers_smoke(self, capsys):
        code = main([
            "reliability", "--schemes", "xed",
            "--systems", "20000", "--workers", "2", "--shard-size", "10000",
        ])
        assert code == 0
        assert "XED (9 chips)" in capsys.readouterr().out

    def test_campaign_with_workers_smoke(self, capsys):
        code = main([
            "campaign", "--kind", "xed", "--trials", "4",
            "--workers", "2", "--shard-size", "2",
        ])
        assert code == 0
        assert "scenarios" in capsys.readouterr().out


class TestEccBackendFlag:
    def test_default_is_scalar(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.ecc_backend == "scalar"

    def test_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["experiment", "table2", "--ecc-backend", "simd"]
            )

    def test_flag_present_on_reliability_all_export(self):
        for argv in (
            ["reliability", "--ecc-backend", "batched"],
            ["all", "--ecc-backend", "batched"],
            ["export", "table2", "--ecc-backend", "batched"],
        ):
            assert build_parser().parse_args(argv).ecc_backend == "batched"

    def test_experiment_table2_batched_runs(self, capsys):
        assert main(
            ["experiment", "table2", "--ecc-backend", "batched"]
        ) == 0
        out = capsys.readouterr().out
        assert "Detection-rate" in out

    def test_reliability_batched_matches_scalar(self, capsys):
        argv = ["reliability", "--schemes", "ecc_dimm", "--systems", "20000"]
        assert main(argv) == 0
        scalar_out = capsys.readouterr().out
        assert main(argv + ["--ecc-backend", "batched"]) == 0
        batched_out = capsys.readouterr().out
        assert scalar_out == batched_out
