"""Unit tests for the distributed coordinator's bookkeeping layers.

Covers the :class:`~repro.runtime.checkpoint.LeaseBook` lease ledger
(deterministic grant ordering, expiry + requeue, retry budgets,
quarantine/abort), the duplicate/conflict hardening of
:func:`~repro.runtime.checkpoint.load_checkpoint`, and the
:class:`~repro.runtime.distributed.JobSpec` handshake payload.  The
network paths are exercised end to end in
``tests/integration/test_distributed_runs.py``.
"""

import json

import pytest

from repro.faultsim.parallel import select_shard_args
from repro.runtime import load_checkpoint, parse_chaos_spec
from repro.runtime.checkpoint import (
    CheckpointStore,
    LeaseBook,
    RunFingerprint,
    ShardRecord,
)
from repro.runtime.distributed import JobSpec


class FakeClock:
    """Injectable monotonic clock: advances only when told to."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make_book(total=6, **kwargs):
    clock = FakeClock()
    defaults = dict(
        seed=7, lease_shards=2, lease_timeout_s=10.0, max_retries=2,
        backoff_base_s=0.25, backoff_cap_s=8.0, clock=clock,
    )
    defaults.update(kwargs)
    return LeaseBook(total, **defaults), clock


class TestLeaseGranting:
    def test_grants_lowest_indices_first(self):
        book, _ = make_book()
        grants = [book.grant("w").shards for _ in range(3)]
        assert grants == [(0, 1), (2, 3), (4, 5)]
        assert book.grant("w") is None  # everything is leased out

    def test_attempts_start_at_one(self):
        book, _ = make_book()
        assert book.grant("w").attempts == (1, 1)

    def test_complete_drains_to_done(self):
        book, _ = make_book(total=3, lease_shards=3)
        lease = book.grant("w")
        for index in lease.shards:
            assert book.complete(index)
        assert book.done
        assert book.active_leases == []

    def test_duplicate_complete_is_rejected(self):
        book, _ = make_book(total=2, lease_shards=2)
        book.grant("w")
        assert book.complete(0)
        assert not book.complete(0)

    def test_resume_seeds_completed(self):
        book, _ = make_book(total=4, completed=[0, 2])
        assert book.grant("w").shards == (1, 3)


class TestRetryAndExpiry:
    def test_failed_shard_backs_off_then_requeues(self):
        book, clock = make_book(total=1, lease_shards=1)
        book.grant("w")
        assert book.fail(0, "fault") == "retry"
        # Backoff window still closed: nothing is ready.
        assert book.grant("w") is None
        wait = book.next_ready_in()
        assert 0.25 <= wait <= 0.25 * 1.25
        clock.now += wait
        lease = book.grant("w")
        assert lease.shards == (0,)
        assert lease.attempts == (2,)

    def test_backoff_is_deterministic_across_books(self):
        delays = []
        for _ in range(2):
            book, clock = make_book(total=1, lease_shards=1)
            book.grant("w")
            book.fail(0, "fault")
            delays.append(book.retry_at[0] - clock.now)
        assert delays[0] == delays[1]

    def test_expiry_releases_outstanding_shards(self):
        book, clock = make_book(total=4, lease_shards=2)
        lease = book.grant("w")
        book.complete(lease.shards[0])
        assert book.expire() == []  # deadline not reached yet
        clock.now += book.lease_timeout_s + 1.0
        expired = book.expire()
        assert [(lease_.lease_id, indices) for lease_, indices in expired] == [
            (lease.lease_id, (lease.shards[1],))
        ]
        # The caller routes the orphan through fail(); after backoff the
        # shard is re-grantable and pending order stays lowest-first.
        assert book.fail(lease.shards[1], "timeout") == "retry"
        clock.now += 10.0
        assert book.grant("w2").shards == (1, 2)

    def test_requeue_preserves_lowest_first_order(self):
        book, clock = make_book(total=6, lease_shards=2)
        first = book.grant("w")  # (0, 1)
        book.grant("w")          # (2, 3)
        for index in first.shards:
            book.fail(index, "crash")
        clock.now += 10.0
        # 0 and 1 come back before untouched 4 and 5.
        assert book.grant("w").shards == (0, 1)

    def test_stale_failure_after_completion_is_ignored(self):
        book, _ = make_book(total=2, lease_shards=2)
        book.grant("w")
        book.complete(0)
        assert book.fail(0, "crash") == "retry"
        assert 0 not in book.failures
        assert book.pending_count == 0

    def test_release_returns_unfinished_indices(self):
        book, _ = make_book(total=4, lease_shards=4)
        lease = book.grant("w")
        book.complete(0)
        assert book.release(lease.lease_id) == (1, 2, 3)
        assert book.active_leases == []


class TestRetryBudget:
    def _exhaust(self, book, clock):
        decisions = []
        for _ in range(book.max_retries + 1):
            clock.now += 1000.0
            lease = book.grant("w")
            decisions.append(book.fail(lease.shards[0], "fault"))
        return decisions

    def test_abort_without_keep_going(self):
        book, clock = make_book(total=1, lease_shards=1, max_retries=2)
        assert self._exhaust(book, clock) == ["retry", "retry", "abort"]

    def test_quarantine_with_keep_going(self):
        book, clock = make_book(
            total=1, lease_shards=1, max_retries=2, keep_going=True
        )
        assert self._exhaust(book, clock) == ["retry", "retry", "quarantine"]
        assert book.quarantined == [0]
        assert book.done


class TestCheckpointDuplicateHardening:
    def _write(self, tmp_path, extra_lines):
        fingerprint = RunFingerprint(
            kind="test", seed=1, total=4, shard_size=2,
            config_hash="c", code_version="v",
        )
        path = tmp_path / "dup.ckpt"
        store = CheckpointStore.create(path, fingerprint)
        store.add(0, {"value": "first"})
        store.add(1, {"value": "other"})
        store.flush()
        with open(path, "a", encoding="utf-8") as fh:
            for line in extra_lines:
                fh.write(line + "\n")
        return path

    def test_identical_redelivery_counts_as_duplicate(self, tmp_path):
        dup = ShardRecord(index=0, payload={"value": "first"}).to_line()
        loaded = load_checkpoint(self._write(tmp_path, [dup]))
        assert loaded.duplicates == 1
        assert loaded.conflicts == 0
        assert loaded.discarded == 0
        assert loaded.records[0].payload == {"value": "first"}

    def test_conflicting_record_keeps_first_and_is_counted(self, tmp_path):
        conflict = ShardRecord(index=0, payload={"value": "evil"}).to_line()
        loaded = load_checkpoint(self._write(tmp_path, [conflict]))
        assert loaded.conflicts == 1
        assert loaded.duplicates == 0
        # First valid record wins deterministically.
        assert loaded.records[0].payload == {"value": "first"}

    def test_unpacks_as_legacy_three_tuple(self, tmp_path):
        fingerprint, records, discarded = load_checkpoint(
            self._write(tmp_path, [])
        )
        assert isinstance(fingerprint, dict)
        assert sorted(records) == [0, 1]
        assert discarded == 0

    def test_corrupt_tail_still_discarded_after_duplicates(self, tmp_path):
        dup = ShardRecord(index=1, payload={"value": "other"}).to_line()
        loaded = load_checkpoint(
            self._write(tmp_path, [dup, '{"record": "shard", "broken'])
        )
        assert loaded.duplicates == 1
        assert loaded.discarded == 1

    def test_resume_surfaces_dedup_counters(self, tmp_path):
        fingerprint = RunFingerprint(
            kind="test", seed=1, total=4, shard_size=2,
            config_hash="c", code_version="v",
        )
        conflict = ShardRecord(index=0, payload={"value": "evil"}).to_line()
        path = self._write(tmp_path, [conflict])
        store = CheckpointStore.resume(path, fingerprint)
        assert store.conflicts == 1
        assert store.duplicates == 0
        # The rewritten file is clean: one record per index.
        reloaded = load_checkpoint(path)
        assert reloaded.conflicts == 0
        assert reloaded.records[0].payload == {"value": "first"}


class TestJobSpec:
    def test_round_trips_through_wire_dict(self):
        spec = JobSpec(
            scheme="xed", num_systems=10_000, shard_size=2_500,
            seed=11, years=5.0, scaling_rate=0.1, scrub_hours=24.0,
        )
        assert JobSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_unknown_scheme_is_rejected(self):
        spec = JobSpec(scheme="rot13", num_systems=100, shard_size=50)
        with pytest.raises(ValueError, match="unknown scheme"):
            spec.build()

    def test_num_shards_matches_plan(self):
        spec = JobSpec(scheme="xed", num_systems=10_000, shard_size=3_000)
        assert spec.num_shards() == 4


class TestSelectShardArgs:
    def test_selects_by_global_index(self):
        plan = [("a",), ("b",), ("c",)]
        assert select_shard_args(plan, [2, 0]) == [("c",), ("a",)]

    def test_out_of_plan_index_is_rejected(self):
        with pytest.raises(ValueError, match="outside plan"):
            select_shard_args([("a",)], [1])


class TestNetworkChaosVerbs:
    def test_parse_spec_network_verbs(self):
        policy = parse_chaos_spec(
            "drop=1;delay=2;duplicate=3;partition=4;delay-s=0.5"
        )
        assert policy.drop_shards == (1,)
        assert policy.delay_shards == (2,)
        assert policy.duplicate_shards == (3,)
        assert policy.partition_shards == (4,)
        assert policy.delay_s == 0.5
        assert policy.has_network_verbs

    def test_verbs_trigger_on_first_attempt_only_by_default(self):
        policy = parse_chaos_spec("drop=1;partition=2")
        assert policy.should_drop(1, 1)
        assert not policy.should_drop(1, 2)
        assert policy.should_partition(2, 1)
        assert not policy.should_partition(2, 2)
        assert not policy.should_drop(0, 1)

    def test_crash_only_spec_has_no_network_verbs(self):
        assert not parse_chaos_spec("crash=1").has_network_verbs
