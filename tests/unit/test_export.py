"""Unit tests for the experiment CSV export layer."""

import csv

import pytest

from repro.analysis import run_experiment
from repro.analysis.export import export_report
from repro.cli import main


@pytest.fixture(scope="module")
def fig6_report():
    return run_experiment("fig6", scale="quick")


class TestExportReport:
    def test_writes_transcript(self, fig6_report, tmp_path):
        paths = export_report(fig6_report, tmp_path)
        txt = tmp_path / "fig6.txt"
        assert txt in paths
        assert "collision" in txt.read_text()

    def test_scalar_csv(self, fig6_report, tmp_path):
        export_report(fig6_report, tmp_path)
        # fig6's data holds plain floats -> a name/value CSV.
        csvs = list(tmp_path.glob("fig6_*.csv"))
        assert not csvs  # floats are top-level scalars, no dict payload

    def test_reliability_curves_csv(self, tmp_path):
        report = run_experiment("fig7", scale="quick")
        export_report(report, tmp_path)
        path = tmp_path / "fig7_results.csv"
        assert path.exists()
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        schemes = {r["scheme"] for r in rows}
        assert "XED (9 chips)" in schemes
        assert "Chipkill (18 chips)" in schemes
        years = sorted({int(r["year"]) for r in rows})
        assert years == [1, 2, 3, 4, 5, 6, 7]
        for row in rows:
            assert 0.0 <= float(row["probability_of_failure"]) <= 1.0

    def test_detection_table_csv(self, tmp_path):
        report = run_experiment("table2", scale="quick")
        export_report(report, tmp_path)
        path = tmp_path / "table2_aligned.csv"
        assert path.exists()
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        crc_bursts = [
            float(r["burst_rate"]) for r in rows if r["code"] == "CRC8-ATM"
        ]
        assert crc_bursts and all(v == 1.0 for v in crc_bursts)

    def test_perf_grid_csv(self, tmp_path):
        report = run_experiment("fig11", scale="quick")
        export_report(report, tmp_path)
        path = tmp_path / "fig11_grid.csv"
        assert path.exists()
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert {"workload", "scheme", "exec_bus_cycles", "power_w"} <= set(
            rows[0]
        )
        assert any(r["workload"] == "libquantum" for r in rows)

    def test_directory_created(self, fig6_report, tmp_path):
        nested = tmp_path / "a" / "b"
        export_report(fig6_report, nested)
        assert (nested / "fig6.txt").exists()


class TestExportCli:
    def test_cli_export(self, tmp_path, capsys):
        code = main(["export", "table3", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert str(tmp_path / "table3.txt") in out
        assert (tmp_path / "table3.txt").exists()

    def test_cli_export_unknown(self, tmp_path):
        assert main(["export", "nope", "--out", str(tmp_path)]) == 2
