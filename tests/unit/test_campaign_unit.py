"""Unit tests for the campaign module's bookkeeping (fast paths)."""

import pytest

from repro.faultsim.campaign import (
    CampaignResult,
    Outcome,
    Scenario,
    _classify,
    run_xed_campaign,
)
from repro.dram.chip import FaultGranularity


class TestClassification:
    def test_clean(self):
        assert _classify(True, True, "clean") is Outcome.CLEAN

    def test_corrected(self):
        assert _classify(True, True, "corrected_erasure") is Outcome.CORRECTED

    def test_due(self):
        assert _classify(False, False, "due") is Outcome.DUE

    def test_sdc(self):
        assert _classify(True, False, "corrected_erasure") is Outcome.SDC


class TestCampaignResult:
    def make(self, outcomes):
        result = CampaignResult()
        for outcome in outcomes:
            result.scenarios.append(
                Scenario([FaultGranularity.BIT], [0], True, outcome, "x")
            )
        return result

    def test_counts(self):
        result = self.make(
            [Outcome.CLEAN, Outcome.CORRECTED, Outcome.CORRECTED, Outcome.DUE]
        )
        counts = result.counts
        assert counts[Outcome.CORRECTED] == 2
        assert result.total == 4
        assert result.sdc_count == 0
        assert result.corrected_fraction == pytest.approx(0.75)

    def test_empty(self):
        result = CampaignResult()
        assert result.corrected_fraction == 0.0
        assert result.total == 0

    def test_append_maintains_counts_incrementally(self):
        result = CampaignResult()
        for outcome in (Outcome.CLEAN, Outcome.SDC, Outcome.CLEAN):
            result.append(
                Scenario([FaultGranularity.BIT], [0], True, outcome, "x")
            )
        assert result.counts[Outcome.CLEAN] == 2
        assert result.sdc_count == 1
        assert result.total == 3

    def test_direct_scenario_append_triggers_recount(self):
        # Callers that bypass append() (like make() above) must still
        # see fresh counts: the staleness check recounts on access.
        result = self.make([Outcome.CLEAN])
        assert result.counts[Outcome.CLEAN] == 1
        result.scenarios.append(
            Scenario([FaultGranularity.BIT], [0], True, Outcome.DUE, "x")
        )
        assert result.counts[Outcome.DUE] == 1
        result.append(
            Scenario([FaultGranularity.BIT], [0], True, Outcome.DUE, "x")
        )
        assert result.counts[Outcome.DUE] == 2
        assert result.total == 3

    def test_counts_by_granularity(self):
        result = CampaignResult()
        result.append(
            Scenario([FaultGranularity.ROW], [0], True, Outcome.CLEAN, "x")
        )
        result.append(
            Scenario(
                [FaultGranularity.ROW, FaultGranularity.BIT],
                [0, 1], True, Outcome.CORRECTED, "x",
            )
        )
        # A scenario with duplicate granularities counts once per kind.
        result.append(
            Scenario(
                [FaultGranularity.BIT, FaultGranularity.BIT],
                [2, 3], True, Outcome.DUE, "x",
            )
        )
        by_gran = result.counts_by_granularity()
        assert by_gran["row"][Outcome.CLEAN] == 1
        assert by_gran["row"][Outcome.CORRECTED] == 1
        assert by_gran["bit"][Outcome.CORRECTED] == 1
        assert by_gran["bit"][Outcome.DUE] == 1
        assert by_gran["bit"][Outcome.SDC] == 0

    def test_format_summary_breakdown(self):
        result = self.make([Outcome.CLEAN, Outcome.CORRECTED])
        text = result.format_summary()
        assert "2 scenarios" in text
        assert "bit" in text and "clean," in text
        flat = result.format_summary(by_granularity=False)
        assert "bit" not in flat


class TestDeterminism:
    def test_same_seed_same_outcomes(self):
        a = run_xed_campaign(trials=4, seed=42)
        b = run_xed_campaign(trials=4, seed=42)
        assert [s.outcome for s in a.scenarios] == [
            s.outcome for s in b.scenarios
        ]

    def test_restricted_granularities(self):
        result = run_xed_campaign(
            trials=4, seed=1, granularities=(FaultGranularity.ROW,)
        )
        for scenario in result.scenarios:
            assert scenario.granularities == [FaultGranularity.ROW]
