"""Golden-corpus regression test for the performance simulator.

``tests/data/perfsim_golden.json`` records SHA-256 digests of the
scalar engine's exact observables -- checkpoint payload, per-channel
JEDEC command streams and derived power -- for a fixed set of
(workload, scheme, instructions, seed) cells covering all 11 scheme
configs.  This test replays every entry through **both** engine
backends and requires each to reproduce the recorded digest, pinning
simulator output across refactors of either path.  Regenerate
intentionally with ``tools/gen_perfsim_golden.py``.
"""

import hashlib
import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS_PATH = REPO_ROOT / "tests" / "data" / "perfsim_golden.json"

_spec = importlib.util.spec_from_file_location(
    "gen_perfsim_golden", REPO_ROOT / "tools" / "gen_perfsim_golden.py"
)
gen_perfsim_golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen_perfsim_golden)

from repro.perfsim.configs import SCHEME_CONFIGS  # noqa: E402

CORPUS = json.loads(CORPUS_PATH.read_text())["entries"]
CASE_IDS = [
    f"{e['workload']}-{e['scheme']}-seed{e['seed']}-n{e['instructions']}"
    for e in CORPUS
]


class TestGoldenCorpus:
    def test_corpus_covers_all_scheme_configs(self):
        assert {e["scheme"] for e in CORPUS} == set(SCHEME_CONFIGS)

    @pytest.mark.parametrize("backend", ["scalar", "pipeline"])
    @pytest.mark.parametrize("entry", CORPUS, ids=CASE_IDS)
    def test_backend_reproduces_recorded_digest(self, entry, backend):
        case = {k: entry[k] for k in ("workload", "scheme", "seed",
                                      "instructions")}
        _, result, power = gen_perfsim_golden.run_case(case, backend)
        assert result.exec_bus_cycles == entry["exec_bus_cycles"]
        assert result.reads == entry["reads"]
        assert result.writes == entry["writes"]
        assert sum(len(log.commands) for log in result.command_logs) == (
            entry["commands"]
        )
        assert gen_perfsim_golden.digest_of(result, power) == entry["digest"], (
            f"{backend} backend diverged from the recorded golden digest "
            f"for ({entry['workload']}, {entry['scheme']}, "
            f"seed {entry['seed']}); if the change is intentional, "
            "regenerate with tools/gen_perfsim_golden.py"
        )

    def test_digest_is_canonical_sha256(self):
        entry = CORPUS[0]
        case = {k: entry[k] for k in ("workload", "scheme", "seed",
                                      "instructions")}
        _, result, power = gen_perfsim_golden.run_case(case, "scalar")
        commands = [
            [
                [c.cmd.name, c.time, c.rank, c.bank, c.row,
                 c.data_start, c.data_end]
                for c in log.commands
            ]
            for log in result.command_logs
        ]
        doc = {
            "result": result.to_payload(),
            "commands": commands,
            "power": {
                "background": power.background,
                "activate": power.activate,
                "read_write": power.read_write,
                "refresh": power.refresh,
            },
        }
        canonical = json.dumps(doc, sort_keys=True)
        assert (
            gen_perfsim_golden.digest_of(result, power)
            == hashlib.sha256(canonical.encode()).hexdigest()
        )
