"""Golden-corpus regression test for the Monte-Carlo simulator.

``tests/data/faultsim_golden.json`` records SHA-256 digests of the
scalar backend's exact ``simulate()`` payloads for a fixed set of
(scheme, seed, config) tuples.  This test replays every entry through
**both** adjudication backends and requires each to reproduce the
recorded digest, pinning simulator output across refactors of either
path.  Regenerate intentionally with ``tools/gen_faultsim_golden.py``.
"""

import hashlib
import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS_PATH = REPO_ROOT / "tests" / "data" / "faultsim_golden.json"

_spec = importlib.util.spec_from_file_location(
    "gen_faultsim_golden", REPO_ROOT / "tools" / "gen_faultsim_golden.py"
)
gen_faultsim_golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen_faultsim_golden)

from repro.faultsim import simulate  # noqa: E402
from repro.faultsim.differential import _with_backend  # noqa: E402

CORPUS = json.loads(CORPUS_PATH.read_text())["entries"]
CASE_IDS = [
    f"{e['scheme']}-seed{e['seed']}"
    + ("-scaled" if e["scaling_rate"] else "")
    + ("-scrub" if e["scrub_hours"] else "")
    for e in CORPUS
]


def run_entry(entry, backend):
    """Simulate one corpus entry on the requested backend."""
    _, config = gen_faultsim_golden.config_for(entry)
    scheme = gen_faultsim_golden.SCHEMES[entry["scheme"]]()
    return simulate(
        scheme,
        _with_backend(config, backend),
        shard_size=entry["shard_size"],
    )


class TestGoldenCorpus:
    def test_corpus_covers_all_six_schemes(self):
        assert {e["scheme"] for e in CORPUS} >= {
            "non_ecc", "ecc_dimm", "xed", "chipkill",
            "double_chipkill", "xed_chipkill",
        }

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    @pytest.mark.parametrize("entry", CORPUS, ids=CASE_IDS)
    def test_backend_reproduces_recorded_digest(self, entry, backend):
        result = run_entry(entry, backend)
        assert result.failures == entry["failures"]
        assert result.due_count == entry["due"]
        assert result.sdc_count == entry["sdc"]
        assert gen_faultsim_golden.digest_of(result) == entry["digest"], (
            f"{backend} backend diverged from the recorded golden digest "
            f"for {entry['scheme']} (seed {entry['seed']}); if the change "
            "is intentional, regenerate with tools/gen_faultsim_golden.py"
        )

    def test_digest_is_canonical_sha256(self):
        result = run_entry(CORPUS[0], "scalar")
        canonical = json.dumps(result.to_payload(), sort_keys=True)
        assert (
            gen_faultsim_golden.digest_of(result)
            == hashlib.sha256(canonical.encode()).hexdigest()
        )
