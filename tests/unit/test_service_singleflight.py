"""Single-flight submission: N identical submissions, one execution.

The campaign service's core concurrency promise: however many clients
submit the same experiment concurrently, exactly one execution runs
and every submitter is handed the same job.  These tests drive
:class:`CampaignService` with an injected runner (a countable stub
that blocks until released, so submissions provably race a job that is
*in flight*, not merely queued) through real threads -- 8 of them,
per the acceptance bar.
"""

import threading

import pytest

from repro.service import CampaignService, ExperimentSpec

SPEC = {"schemes": ["xed"], "systems": 100, "shard_size": 50}
OTHER = {"schemes": ["chipkill"], "systems": 100, "shard_size": 50}


class _BlockingRunner:
    """Injectable runner that counts executions and blocks on a gate."""

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.started = threading.Event()
        self.lock = threading.Lock()
        self.executions = []

    def __call__(self, service, job) -> None:
        with self.lock:
            self.executions.append(job.fingerprint)
        self.started.set()
        assert self.gate.wait(timeout=30.0), "test forgot to open the gate"
        service.cache.put(job.fingerprint, {"stub": job.fingerprint})
        service.store.finish(job)


@pytest.fixture()
def runner():
    return _BlockingRunner()


@pytest.fixture()
def service(tmp_path, runner):
    svc = CampaignService(tmp_path / "data", runner=runner)
    svc.start()
    yield svc
    runner.gate.set()
    svc.shutdown(timeout=5.0)


class TestSingleFlight:
    def test_eight_concurrent_submissions_one_execution(
        self, service, runner
    ):
        responses = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def submit():
            barrier.wait()
            status, body = service.submit(SPEC)
            with lock:
                responses.append((status, body))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert len(responses) == 8
        assert all(status == 202 for status, _ in responses)
        job_ids = {body["job_id"] for _, body in responses}
        assert len(job_ids) == 1, "all submitters share one job"
        # Release the (single) execution and let it finish.
        runner.gate.set()
        job = service.store.get(job_ids.pop())
        assert service.store.wait_for_terminal(job, timeout=30.0)
        assert job.state == "done"
        assert len(runner.executions) == 1, "exactly one execution ran"
        # 7 of the 8 submissions were coalesced onto the first.
        assert service.stats()["jobs.coalesced"] == 7

    def test_submission_races_in_flight_job(self, service, runner):
        status, first = service.submit(SPEC)
        assert status == 202 and first["disposition"] == "created"
        # Wait until the job is genuinely *running* inside the runner.
        assert runner.started.wait(timeout=30.0)
        status, second = service.submit(SPEC)
        assert second["job_id"] == first["job_id"]
        assert second["disposition"] == "coalesced"
        assert len(runner.executions) == 1

    def test_distinct_fingerprints_execute_independently(
        self, service, runner
    ):
        _, a = service.submit(SPEC)
        _, b = service.submit(OTHER)
        assert a["job_id"] != b["job_id"]
        assert a["fingerprint"] != b["fingerprint"]
        runner.gate.set()
        for body in (a, b):
            job = service.store.get(body["job_id"])
            assert service.store.wait_for_terminal(job, timeout=30.0)
            assert job.state == "done"
        assert sorted(runner.executions) == sorted(
            [a["fingerprint"], b["fingerprint"]]
        )

    def test_done_job_absorbs_resubmission_via_cache(self, service, runner):
        runner.gate.set()
        _, first = service.submit(SPEC)
        job = service.store.get(first["job_id"])
        assert service.store.wait_for_terminal(job, timeout=30.0)
        _, again = service.submit(SPEC)
        assert again["job_id"] == first["job_id"]
        assert again["disposition"] == "cached"
        assert len(runner.executions) == 1

    def test_evicted_cache_requeues_same_job(self, service, runner):
        runner.gate.set()
        _, first = service.submit(SPEC)
        job = service.store.get(first["job_id"])
        assert service.store.wait_for_terminal(job, timeout=30.0)
        # Corrupt the stored entry; resubmission must recompute under
        # the same job identity.
        path = service.cache.path_for(first["fingerprint"])
        path.write_text("garbage", encoding="utf-8")
        _, again = service.submit(SPEC)
        assert again["job_id"] == first["job_id"]
        assert again["disposition"] == "requeued"
        assert service.store.wait_for_terminal(job, timeout=30.0)
        assert len(runner.executions) == 2
        assert service.cache.get(first["fingerprint"]) is not None


class TestFingerprintIdentity:
    def test_execution_knobs_do_not_change_identity(self):
        base = ExperimentSpec.from_dict(SPEC).fingerprint()
        with_workers = ExperimentSpec.from_dict(
            {**SPEC, "workers": 4}
        ).fingerprint()
        with_chaos = ExperimentSpec.from_dict(
            {**SPEC, "chaos": "crash=1"}
        ).fingerprint()
        assert base == with_workers == with_chaos

    def test_result_knobs_change_identity(self):
        base = ExperimentSpec.from_dict(SPEC).fingerprint()
        assert ExperimentSpec.from_dict(
            {**SPEC, "seed": 99}
        ).fingerprint() != base
        assert ExperimentSpec.from_dict(
            {**SPEC, "shard_size": 25}
        ).fingerprint() != base
        assert ExperimentSpec.from_dict(
            {**SPEC, "scrub_hours": 12.0}
        ).fingerprint() != base
