"""Unit tests for the batched bit-matrix ECC kernels.

These cover the batched layer's own contracts (shapes, validation, the
matrix export, the no-op pad position, RS syndromes); the scalar-vs-
batched bit-identity proof lives in ``test_ecc_differential.py`` and the
property suite in ``test_ecc_properties.py``.
"""

import random

import numpy as np
import pytest

from repro.ecc.batched import (
    BACKENDS,
    BatchOutcome,
    BatchedCode,
    BatchedRSSyndromes,
    bits_to_words,
    int_to_bits,
    validate_backend,
    words_to_bits,
)
from repro.ecc.secded import DecodeOutcome, SECDEDCode


class TestBackendSwitch:
    def test_known_backends(self):
        assert BACKENDS == ("scalar", "batched")
        for name in BACKENDS:
            assert validate_backend(name) == name

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown ECC backend"):
            validate_backend("vectorised")


class TestBitConversions:
    def test_int_to_bits_layout(self):
        bits = int_to_bits(0b1011, 8)
        assert bits.tolist() == [1, 1, 0, 1, 0, 0, 0, 0]

    def test_roundtrip_random_words(self):
        rng = random.Random(11)
        words = [rng.getrandbits(72) for _ in range(100)]
        assert bits_to_words(words_to_bits(words, 72)) == words

    def test_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            words_to_bits([1 << 72], 72)
        with pytest.raises(ValueError):
            words_to_bits([1 << 100], 72)

    def test_rejects_negative_word(self):
        with pytest.raises((ValueError, OverflowError)):
            words_to_bits([-1], 72)

    def test_non_byte_multiple_width(self):
        words = [0b10101, 0b11111, 0]
        assert bits_to_words(words_to_bits(words, 5)) == words
        with pytest.raises(ValueError):
            words_to_bits([1 << 5], 5)


class TestMatrixExport:
    def test_matrices_shapes(self, secded_code):
        m = secded_code.to_matrices()
        assert m.G.shape == (64, 72)
        assert m.H.shape == (8, 72)
        assert m.num_syndrome_bits == 8
        assert m.syndrome_lut.shape == (256,)
        assert m.data_columns.shape == (64,)

    def test_matrices_are_read_only(self, secded_code):
        m = secded_code.to_matrices()
        for arr in (m.G, m.H, m.syndrome_lut, m.data_columns):
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_generator_rows_are_scalar_encodings(self, secded_code):
        m = secded_code.to_matrices()
        for i in (0, 17, 63):
            expected = int_to_bits(secded_code.encode(1 << i), 72)
            assert np.array_equal(m.G[i], expected)

    def test_lut_covers_every_bit_position(self, secded_code):
        m = secded_code.to_matrices()
        corrected = sorted(int(b) for b in m.syndrome_lut if b >= 0)
        assert corrected == list(range(72))

    def test_base_to_matrices_is_abstract(self):
        class Opaque(SECDEDCode):
            n = 72
            k = 64

        with pytest.raises(NotImplementedError):
            Opaque().to_matrices()

    def test_batched_is_cached(self, secded_code):
        assert secded_code.batched() is secded_code.batched()


class TestBatchedKernels:
    def test_encode_matches_scalar(self, secded_code):
        batched = secded_code.batched()
        rng = random.Random(23)
        data = [rng.getrandbits(64) for _ in range(64)]
        codewords = bits_to_words(batched.encode(words_to_bits(data, 64)))
        assert codewords == [secded_code.encode(d) for d in data]

    def test_is_codeword_matches_scalar(self, secded_code):
        batched = secded_code.batched()
        rng = random.Random(29)
        words = [secded_code.encode(rng.getrandbits(64)) for _ in range(20)]
        words += [w ^ (1 << rng.randrange(72)) for w in words[:10]]
        valid = batched.is_codeword(words_to_bits(words, 72))
        assert valid.tolist() == [secded_code.is_codeword(w) for w in words]

    def test_shape_validation(self, secded_code):
        batched = secded_code.batched()
        with pytest.raises(ValueError):
            batched.encode(np.zeros((3, 72), dtype=np.uint8))
        with pytest.raises(ValueError):
            batched.syndromes(np.zeros((3, 64), dtype=np.uint8))
        with pytest.raises(ValueError):
            batched.syndromes_of_error_positions(np.zeros(5, dtype=np.int64))

    def test_position_pad_is_a_noop(self, secded_code):
        batched = secded_code.batched()
        plain = np.array([[3, 40]], dtype=np.int64)
        padded = np.array([[3, 40, 72, 72]], dtype=np.int64)
        assert (
            batched.syndromes_of_error_positions(plain)
            == batched.syndromes_of_error_positions(padded)
        ).all()

    def test_position_bounds_checked(self, secded_code):
        batched = secded_code.batched()
        with pytest.raises(ValueError):
            batched.syndromes_of_error_positions(
                np.array([[73]], dtype=np.int64)
            )
        with pytest.raises(ValueError):
            batched.syndromes_of_error_positions(
                np.array([[-1]], dtype=np.int64)
            )

    def test_outcomes_of_error_positions(self, secded_code):
        batched = secded_code.batched()
        # Single-bit: always corrected.  Padded-out row: no error.
        positions = np.array([[5, 72], [72, 72]], dtype=np.int64)
        outcomes = batched.outcomes_of_error_positions(positions)
        assert outcomes[0] == BatchOutcome.CORRECTED
        assert outcomes[1] == BatchOutcome.NO_ERROR

    def test_classify_marks_miscorrections(self, secded_code):
        """MISCORRECTED = accepted-but-wrong, the SDC population."""
        batched = secded_code.batched()
        rng = random.Random(31)
        data = rng.getrandbits(64)
        clean = secded_code.encode(data)
        # Find an even-weight pattern the decoder accepts wrongly.
        sdc_pattern = None
        while sdc_pattern is None:
            bits = rng.sample(range(72), 4)
            pattern = sum(1 << b for b in bits)
            result = secded_code.decode(clean ^ pattern)
            if result.outcome is not DecodeOutcome.DETECTED_UNCORRECTABLE:
                sdc_pattern = pattern
        words = [clean, clean ^ 1, clean ^ sdc_pattern]
        outcomes = batched.classify(
            words_to_bits(words, 72), words_to_bits([data] * 3, 64)
        )
        assert outcomes[0] == BatchOutcome.NO_ERROR
        assert outcomes[1] == BatchOutcome.CORRECTED
        assert outcomes[2] == BatchOutcome.MISCORRECTED

    def test_classify_length_mismatch(self, secded_code):
        batched = secded_code.batched()
        with pytest.raises(ValueError):
            batched.classify(
                np.zeros((2, 72), dtype=np.uint8),
                np.zeros((3, 64), dtype=np.uint8),
            )


class TestBatchedRSSyndromes:
    @pytest.fixture(params=["rs_chipkill", "rs_double_chipkill"])
    def rs(self, request):
        return request.getfixturevalue(request.param)

    def test_syndromes_match_scalar(self, rs):
        batched = BatchedRSSyndromes(rs)
        rng = random.Random(37)
        rows = []
        for _ in range(50):
            word = list(rs.encode([rng.randrange(rs.field.size)
                                   for _ in range(rs.k)]))
            for _ in range(rng.randrange(3)):
                word[rng.randrange(rs.n)] ^= rng.randrange(1, rs.field.size)
            rows.append(word)
        batch = batched.syndromes(np.array(rows, dtype=np.int64))
        for i, word in enumerate(rows):
            assert batch[i].tolist() == rs.syndromes(word)

    def test_is_codeword(self, rs):
        batched = BatchedRSSyndromes(rs)
        clean = list(rs.encode([7] * rs.k))
        corrupt = list(clean)
        corrupt[0] ^= 1
        valid = batched.is_codeword(np.array([clean, corrupt], dtype=np.int64))
        assert valid.tolist() == [True, False]

    def test_rejects_bad_shapes_and_symbols(self, rs):
        batched = BatchedRSSyndromes(rs)
        with pytest.raises(ValueError):
            batched.syndromes(np.zeros(rs.n, dtype=np.int64))
        with pytest.raises(ValueError):
            batched.syndromes(
                np.full((1, rs.n), rs.field.size, dtype=np.int64)
            )
        with pytest.raises(ValueError):
            batched.syndromes(np.full((1, rs.n), -1, dtype=np.int64))


class TestInstrumentation:
    """The OBS-enabled paths: counters, batch-size histogram, spans."""

    @pytest.fixture(autouse=True)
    def _obs(self):
        from repro.obs import OBS

        OBS.reset()
        OBS.enable()
        yield OBS
        OBS.disable()
        OBS.reset()

    @pytest.fixture
    def batched(self):
        from repro.ecc import HammingSECDED

        return HammingSECDED().batched()

    def test_encode_decode_counters_and_spans(self, _obs, batched):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 2, size=(40, batched.k), dtype=np.uint8)
        words = batched.encode(data)
        batched.decode(words)
        batched.is_codeword(words)
        snap = _obs.registry.snapshot()
        assert snap["counters"]["ecc.batched.encoded_words"] == 40
        assert snap["counters"]["ecc.batched.decoded_words"] == 40
        assert snap["counters"]["ecc.batched.checked_words"] == 40
        assert snap["histograms"]["ecc.batched.batch_words"]["count"] == 2
        assert snap["timers"]["ecc.batched.encode_s"]["count"] == 1
        assert snap["timers"]["ecc.batched.decode_s"]["count"] == 1

    def test_classify_span_wraps_decode(self, _obs, batched):
        rng = np.random.default_rng(4)
        data = rng.integers(0, 2, size=(8, batched.k), dtype=np.uint8)
        words = batched.encode(data)
        batched.classify(words, data)
        timers = _obs.registry.snapshot()["timers"]
        assert timers["ecc.batched.classify_s"]["count"] == 1
        assert timers["ecc.batched.decode_s"]["count"] == 1

    def test_disabled_records_nothing(self, _obs, batched):
        _obs.disable()
        rng = np.random.default_rng(5)
        data = rng.integers(0, 2, size=(8, batched.k), dtype=np.uint8)
        batched.decode(batched.encode(data))
        counters = _obs.registry.snapshot()["counters"]
        assert all(v == 0 for v in counters.values())

    def test_rs_syndromes_counter(self, _obs):
        from repro.ecc import ReedSolomonCode

        rs = ReedSolomonCode.chipkill(16)
        batched = BatchedRSSyndromes(rs)
        clean = list(rs.encode([7] * rs.k))
        batched.syndromes(np.array([clean, clean], dtype=np.int64))
        snap = _obs.registry.snapshot()
        assert snap["counters"]["ecc.batched.rs_words"] == 2
        assert snap["histograms"]["ecc.batched.batch_words"]["count"] == 1
