"""Unit tests for the per-scheme reliability evaluators.

Hand-crafted fault combinations pin down each scheme's survival rules:
the table in :mod:`repro.faultsim.schemes`'s docstring, case by case.
"""

import random

import pytest

from repro.faultsim.fault import AddressRange, ChipFault, FaultSpace
from repro.faultsim.fault_models import FailureMode
from repro.faultsim.schemes import (
    ChipkillScheme,
    DoubleChipkillScheme,
    EccDimmScheme,
    FailureKind,
    NonEccScheme,
    XedChipkillScheme,
    XedScheme,
)

SPACE = FaultSpace()


def fault(chip, mode=FailureMode.SINGLE_BANK, *, rank=0, channel=0,
          bank=0, time=100.0, permanent=True, correctable=None):
    wildcard = SPACE.wildcard_for(mode)
    if correctable is None:
        correctable = mode.on_die_correctable
    return ChipFault(
        channel=channel, rank=rank, chip=chip, mode=mode,
        permanent=permanent, time_hours=time,
        addr=AddressRange(bank << SPACE.bank_shift, wildcard),
        on_die_correctable=correctable,
    )


@pytest.fixture()
def rng():
    return random.Random(1)


class TestGeometry:
    def test_chip_populations(self):
        assert NonEccScheme().total_chips == 64
        assert EccDimmScheme().total_chips == 72
        assert XedScheme().total_chips == 72
        assert ChipkillScheme().total_chips == 144
        assert XedChipkillScheme().total_chips == 144
        assert DoubleChipkillScheme().total_chips == 288

    def test_min_faults_fast_path(self):
        assert EccDimmScheme().min_faults == 1
        assert XedScheme().min_faults == 1
        assert ChipkillScheme().min_faults == 2
        assert XedChipkillScheme().min_faults == 2
        assert DoubleChipkillScheme().min_faults == 3


class TestNonEccAndEccDimm:
    def test_bit_fault_invisible(self, rng):
        assert NonEccScheme().evaluate([fault(0, FailureMode.SINGLE_BIT)], rng) is None
        assert EccDimmScheme().evaluate([fault(0, FailureMode.SINGLE_BIT)], rng) is None

    @pytest.mark.parametrize("mode", [
        FailureMode.SINGLE_WORD, FailureMode.SINGLE_COLUMN,
        FailureMode.SINGLE_ROW, FailureMode.SINGLE_BANK,
        FailureMode.MULTI_BANK,
    ])
    def test_any_visible_fault_fails_both(self, rng, mode):
        assert NonEccScheme().evaluate([fault(0, mode)], rng) is not None
        assert EccDimmScheme().evaluate([fault(0, mode)], rng) is not None

    def test_non_ecc_failures_are_silent(self, rng):
        outcome = NonEccScheme().evaluate([fault(0)], rng)
        assert outcome.kind is FailureKind.SDC

    def test_ecc_dimm_mixes_due_and_sdc(self):
        scheme = EccDimmScheme(sdc_fraction=0.5)
        kinds = set()
        for seed in range(50):
            outcome = scheme.evaluate([fault(0)], random.Random(seed))
            kinds.add(outcome.kind)
        assert kinds == {FailureKind.DUE, FailureKind.SDC}

    def test_failure_time_is_first_fault(self, rng):
        outcome = EccDimmScheme().evaluate(
            [fault(0, time=500.0), fault(1, time=100.0)], rng
        )
        assert outcome.time_hours == 100.0


class TestXed:
    def test_single_chip_fault_of_any_size_survived(self, rng):
        for mode in (FailureMode.SINGLE_COLUMN, FailureMode.SINGLE_ROW,
                     FailureMode.SINGLE_BANK, FailureMode.MULTI_BANK):
            assert XedScheme().evaluate([fault(3, mode)], rng) is None

    def test_two_colliding_chips_fail(self, rng):
        outcome = XedScheme().evaluate(
            [fault(0, time=10.0), fault(1, time=50.0)], rng
        )
        assert outcome is not None
        assert outcome.kind is FailureKind.DUE
        assert outcome.time_hours == 50.0  # fatal when the second lands

    def test_same_chip_twice_survived(self, rng):
        assert XedScheme().evaluate([fault(2), fault(2)], rng) is None

    def test_different_rank_pairs_survive(self, rng):
        faults = [fault(0, rank=0), fault(1, rank=1)]
        assert XedScheme().evaluate(faults, rng) is None

    def test_different_bank_pairs_survive(self, rng):
        faults = [fault(0, bank=0), fault(1, bank=1)]
        assert XedScheme().evaluate(faults, rng) is None

    def test_non_overlapping_times_survive_with_scrubbing(self, rng):
        import dataclasses

        a = dataclasses.replace(
            fault(0, time=10.0, permanent=False), end_hours=20.0
        )
        b = fault(1, time=30.0)
        assert XedScheme().evaluate([a, b], rng) is None

    def test_bit_faults_never_contribute(self, rng):
        faults = [fault(0, FailureMode.SINGLE_BIT),
                  fault(1, FailureMode.SINGLE_BANK)]
        assert XedScheme().evaluate(faults, rng) is None

    def test_transient_word_due_tail(self):
        scheme = XedScheme(on_die_miss_probability=1.0)  # force the miss
        outcome = scheme.evaluate(
            [fault(0, FailureMode.SINGLE_WORD, permanent=False)],
            random.Random(0),
        )
        assert outcome is not None and outcome.kind is FailureKind.DUE

    def test_permanent_word_fault_diagnosable(self):
        scheme = XedScheme(on_die_miss_probability=1.0)
        outcome = scheme.evaluate(
            [fault(0, FailureMode.SINGLE_WORD, permanent=True)],
            random.Random(0),
        )
        assert outcome is None  # intra-line diagnosis finds permanents

    def test_misdiagnosis_sdc_tail(self):
        scheme = XedScheme(misdiagnosis_sdc_probability=1.0)
        outcome = scheme.evaluate([fault(0, FailureMode.SINGLE_ROW)],
                                  random.Random(0))
        assert outcome is not None and outcome.kind is FailureKind.SDC


class TestChipkill:
    def test_single_chip_survived(self, rng):
        assert ChipkillScheme().evaluate([fault(7)], rng) is None

    def test_colliding_pair_fails(self, rng):
        outcome = ChipkillScheme().evaluate([fault(0), fault(9)], rng)
        assert outcome is not None and outcome.kind is FailureKind.DUE

    def test_transient_word_alone_survived(self, rng):
        f = fault(0, FailureMode.SINGLE_WORD, permanent=False)
        assert ChipkillScheme().evaluate([f], rng) is None


class TestDoubleChipkillAndXedChipkill:
    def test_pair_survived_by_both(self, rng):
        pair = [fault(0), fault(1)]
        assert DoubleChipkillScheme().evaluate(pair, rng) is None
        assert XedChipkillScheme().evaluate(pair, rng) is None

    def test_colliding_triple_fails_both(self, rng):
        triple = [fault(0), fault(1), fault(2)]
        for scheme in (DoubleChipkillScheme(), XedChipkillScheme()):
            outcome = scheme.evaluate(triple, rng)
            assert outcome is not None
            assert outcome.kind is FailureKind.DUE

    def test_triple_with_repeated_chip_is_only_a_pair(self, rng):
        faults = [fault(0), fault(0), fault(1)]
        assert DoubleChipkillScheme().evaluate(faults, rng) is None

    def test_triple_failure_time_is_third_arrival(self, rng):
        triple = [fault(0, time=10.0), fault(1, time=20.0),
                  fault(2, time=30.0)]
        outcome = DoubleChipkillScheme().evaluate(triple, rng)
        assert outcome.time_hours == 30.0

    def test_xed_chipkill_pair_with_undetected_member_fails(self):
        scheme = XedChipkillScheme(on_die_miss_probability=1.0)
        pair = [fault(0, FailureMode.SINGLE_WORD, permanent=False),
                fault(1, FailureMode.SINGLE_BANK)]
        # The word fault collides with the bank fault (same bank) and
        # its on-die miss leaves e + 2v = 3 > 2 check symbols.
        outcome = scheme.evaluate(pair, random.Random(0))
        assert outcome is not None

    def test_xed_chipkill_lone_miss_still_corrected(self):
        scheme = XedChipkillScheme(on_die_miss_probability=1.0)
        lone = [fault(0, FailureMode.SINGLE_WORD, permanent=False)]
        assert scheme.evaluate(lone, random.Random(0)) is None
