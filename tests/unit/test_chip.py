"""Unit tests for the behavioural DRAM chip (on-die ECC + DC-Mux)."""

import pytest

from repro.dram.chip import (
    DCMux,
    DramChip,
    FaultGranularity,
    InjectedFault,
    _mix64,
    _word_hash,
)
from repro.dram.geometry import ChipGeometry
from repro.dram.mode_registers import ModeRegisters
from repro.ecc import HammingSECDED
from repro.ecc.secded import DecodeOutcome


class TestHashing:
    def test_mix64_is_deterministic_and_spreads(self):
        assert _mix64(1) == _mix64(1)
        values = {_mix64(i) for i in range(1000)}
        assert len(values) == 1000

    def test_word_hash_varies_by_location_and_salt(self):
        a = _word_hash(1, 0, 0, 0)
        assert a != _word_hash(1, 0, 0, 1)
        assert a != _word_hash(1, 0, 1, 0)
        assert a != _word_hash(2, 0, 0, 0)
        assert a != _word_hash(1, 0, 0, 0, salt=5)


class TestBasicStorage:
    def test_write_read_roundtrip(self):
        chip = DramChip()
        chip.write(0, 5, 7, 0xDEADBEEF)
        assert chip.read(0, 5, 7) == 0xDEADBEEF

    def test_unwritten_words_read_zero(self):
        assert DramChip().read(3, 100, 50) == 0

    def test_write_rejects_oversized(self):
        with pytest.raises(ValueError):
            DramChip().write(0, 0, 0, 1 << 64)

    def test_bounds_checked(self):
        chip = DramChip()
        with pytest.raises(IndexError):
            chip.write(8, 0, 0, 1)
        with pytest.raises(IndexError):
            chip.read(0, 0, 128)

    def test_stats_counted(self):
        chip = DramChip()
        chip.write(0, 0, 0, 1)
        chip.read(0, 0, 0)
        chip.read(0, 0, 1)
        assert chip.stats["writes"] == 1
        assert chip.stats["reads"] == 2

    def test_alternative_on_die_code(self):
        chip = DramChip(on_die_code=HammingSECDED())
        chip.write(0, 0, 0, 0x1234)
        assert chip.read(0, 0, 0) == 0x1234


class TestInjectedFaultCoverage:
    def test_bit_fault_covers_only_its_word(self):
        f = InjectedFault(FaultGranularity.BIT, True, bank=1, row=2, column=3, bit=5)
        assert f.covers(1, 2, 3)
        assert not f.covers(1, 2, 4)
        assert not f.covers(0, 2, 3)
        assert f.corruption_mask(1, 2, 3, 72) == 1 << 5

    def test_row_fault_covers_whole_row(self):
        f = InjectedFault(FaultGranularity.ROW, True, bank=1, row=2)
        assert f.covers(1, 2, 0) and f.covers(1, 2, 127)
        assert not f.covers(1, 3, 0)

    def test_column_fault_same_bit_every_row(self):
        f = InjectedFault(
            FaultGranularity.COLUMN, True, bank=0, column=9, bit=13
        )
        m1 = f.corruption_mask(0, 0, 9, 72)
        m2 = f.corruption_mask(0, 31000, 9, 72)
        assert m1 == m2 == 1 << 13  # broken bitline: stable position
        assert f.corruption_mask(0, 5, 10, 72) == 0

    def test_bank_and_chip_reach(self):
        bank = InjectedFault(FaultGranularity.BANK, True, bank=2)
        chipf = InjectedFault(FaultGranularity.CHIP, True)
        assert bank.covers(2, 9, 9) and not bank.covers(3, 9, 9)
        assert chipf.covers(7, 1, 1)

    def test_word_fault_multi_bit(self):
        f = InjectedFault(
            FaultGranularity.WORD, True, bank=0, row=0, column=0, severity=4
        )
        mask = f.corruption_mask(0, 0, 0, 72)
        assert bin(mask).count("1") >= 2  # genuinely multi-bit

    def test_corruption_mask_stable(self):
        f = InjectedFault(FaultGranularity.BANK, True, bank=0, seed=3)
        assert f.corruption_mask(0, 7, 7, 72) == f.corruption_mask(0, 7, 7, 72)


class TestRuntimeFaults:
    def test_permanent_chip_failure_detected_by_on_die(self):
        chip = DramChip()
        chip.write(0, 0, 0, 77)
        chip.inject(InjectedFault(FaultGranularity.CHIP, True))
        obs = chip.read_observed(0, 0, 0)
        assert obs.on_die_outcome is DecodeOutcome.DETECTED_UNCORRECTABLE
        assert not obs.sent_catch_word  # XED not enabled yet

    def test_permanent_single_bit_corrected_invisibly(self):
        chip = DramChip()
        chip.write(1, 2, 3, 0xABC)
        chip.inject(
            InjectedFault(FaultGranularity.BIT, True, bank=1, row=2, column=3, bit=7)
        )
        obs = chip.read_observed(1, 2, 3)
        assert obs.on_die_outcome is DecodeOutcome.CORRECTED
        assert obs.value == 0xABC  # on-die ECC hides it
        assert chip.stats["on_die_corrections"] == 1

    def test_transient_fault_cleared_by_rewrite(self):
        chip = DramChip()
        chip.write(0, 1, 2, 500)
        chip.inject(
            InjectedFault(
                FaultGranularity.WORD, False, bank=0, row=1, column=2
            )
        )
        assert chip.read_observed(0, 1, 2).on_die_outcome is not DecodeOutcome.CLEAN
        chip.write(0, 1, 2, 500)  # rewrite heals transient damage
        obs = chip.read_observed(0, 1, 2)
        assert obs.on_die_outcome is DecodeOutcome.CLEAN
        assert obs.value == 500

    def test_permanent_fault_survives_rewrite(self):
        chip = DramChip()
        chip.write(0, 1, 2, 500)
        chip.inject(
            InjectedFault(
                FaultGranularity.WORD, True, bank=0, row=1, column=2
            )
        )
        chip.write(0, 1, 2, 500)
        assert chip.read_observed(0, 1, 2).on_die_outcome is not DecodeOutcome.CLEAN

    def test_transient_row_fault_damages_written_words(self):
        chip = DramChip()
        for col in (0, 5, 9):
            chip.write(2, 40, col, col + 1)
        chip.inject(InjectedFault(FaultGranularity.ROW, False, bank=2, row=40))
        outcomes = [
            chip.read_observed(2, 40, col).on_die_outcome for col in (0, 5, 9)
        ]
        assert all(o is not DecodeOutcome.CLEAN for o in outcomes)
        # Other rows untouched.
        chip.write(2, 41, 0, 9)
        assert chip.read(2, 41, 0) == 9

    def test_clear_faults(self):
        chip = DramChip()
        chip.inject(InjectedFault(FaultGranularity.CHIP, True))
        chip.clear_faults()
        chip.write(0, 0, 0, 1)
        assert chip.read(0, 0, 0) == 1


class TestXedBehaviour:
    def test_catch_word_sent_on_detection(self):
        chip = DramChip()
        chip.regs.set_catch_word(0xCAFEBABE12345678)
        chip.regs.set_xed_enable(True)
        chip.write(0, 0, 0, 42)
        chip.inject(InjectedFault(FaultGranularity.CHIP, True))
        obs = chip.read_observed(0, 0, 0)
        assert obs.sent_catch_word
        assert obs.value == 0xCAFEBABE12345678
        assert chip.stats["catch_words_sent"] == 1

    def test_catch_word_sent_even_on_correction(self):
        """Figure 3: detect OR correct both divert to the catch-word."""
        chip = DramChip()
        chip.regs.set_catch_word(0x1111)
        chip.regs.set_xed_enable(True)
        chip.write(0, 0, 0, 7)
        chip.inject(
            InjectedFault(FaultGranularity.BIT, True, bank=0, row=0, column=0, bit=3)
        )
        obs = chip.read_observed(0, 0, 0)
        assert obs.on_die_outcome is DecodeOutcome.CORRECTED
        assert obs.sent_catch_word and obs.value == 0x1111

    def test_xed_disabled_returns_corrected_data(self):
        chip = DramChip()
        chip.regs.set_catch_word(0x2222)
        chip.regs.set_xed_enable(False)
        chip.write(0, 0, 0, 7)
        chip.inject(
            InjectedFault(FaultGranularity.BIT, True, bank=0, row=0, column=0, bit=3)
        )
        assert chip.read(0, 0, 0) == 7

    def test_dc_mux_truth_table(self):
        regs = ModeRegisters()
        regs.set_catch_word(99)
        regs.set_xed_enable(True)
        assert DCMux.select(5, detected=False, regs=regs) == 5
        assert DCMux.select(5, detected=True, regs=regs) == 99
        regs.set_xed_enable(False)
        assert DCMux.select(5, detected=True, regs=regs) == 5


class TestScalingFaults:
    def test_weak_bits_deterministic(self):
        chip = DramChip(scaling_ber=1e-3, seed=77)
        again = DramChip(scaling_ber=1e-3, seed=77)
        for col in range(64):
            assert chip.weak_bit(0, 0, col) == again.weak_bit(0, 0, col)

    def test_weak_bit_rate_close_to_model(self):
        chip = DramChip(scaling_ber=1e-3, seed=5)
        samples = 20000
        weak = sum(
            chip.weak_bit(b, r, c) is not None
            for b in range(2)
            for r in range(100)
            for c in range(100)
        )
        expected = (1 - (1 - 1e-3) ** 64) * samples
        assert 0.7 * expected < weak < 1.3 * expected

    def test_zero_rate_means_no_weak_bits(self):
        chip = DramChip(scaling_ber=0.0)
        assert all(chip.weak_bit(0, 0, c) is None for c in range(128))

    def test_weak_cell_corrected_by_on_die(self):
        chip = DramChip(scaling_ber=5e-3, seed=3)
        target = next(
            (b, r, c)
            for b in range(8)
            for r in range(50)
            for c in range(128)
            if chip.weak_bit(b, r, c) is not None
        )
        chip.write(*target, 0xF00D)
        obs = chip.read_observed(*target)
        assert obs.on_die_outcome is DecodeOutcome.CORRECTED
        assert obs.value == 0xF00D

    def test_x4_chip_geometry(self):
        chip = DramChip(geometry=ChipGeometry(device_width=4))
        assert chip.regs.catch_word_bits == 32
