"""Unit tests for the closed-form reliability models (Tables III/IV)."""

import pytest

from repro.faultsim import analytical
from repro.faultsim.fault_models import FitTable


class TestDueRate:
    def test_paper_value(self):
        # Table IV: 6.1e-6 over 7 years (9-chip rank, 0.8% miss rate).
        assert analytical.xed_due_rate() == pytest.approx(6.1e-6, rel=0.05)

    def test_scales_with_chips(self):
        assert analytical.xed_due_rate(chips=72) == pytest.approx(
            8 * analytical.xed_due_rate(chips=9)
        )

    def test_zero_miss_probability(self):
        assert analytical.xed_due_rate(miss_probability=0.0) == 0.0


class TestSdcRate:
    def test_paper_order_of_magnitude(self):
        # Table IV: 1.4e-13; our binomial tail lands within ~1 decade.
        rate = analytical.xed_sdc_rate()
        assert 1e-14 < rate < 1e-11

    def test_grows_with_scaling_rate(self):
        from repro.faultsim.scaling import ScalingFaultModel

        harsh = analytical.xed_sdc_rate(
            scaling=ScalingFaultModel(bit_error_rate=1e-3)
        )
        assert harsh > analytical.xed_sdc_rate()


class TestPairCollision:
    def test_probability_is_a_probability(self):
        p = analytical.mean_pair_collision_probability()
        assert 0.0 < p < 1.0

    def test_bank_heavy_mix_increases_collision(self):
        from repro.faultsim.fault_models import FailureMode, ModeRate

        bank_only = FitTable({FailureMode.MULTI_BANK: ModeRate(0.0, 10.0)})
        assert analytical.mean_pair_collision_probability(bank_only) == 1.0

    def test_word_only_mix_is_tiny(self):
        from repro.faultsim.fault_models import FailureMode, ModeRate

        word_only = FitTable({FailureMode.SINGLE_WORD: ModeRate(1.0, 1.0)})
        p = analytical.mean_pair_collision_probability(word_only)
        # Two word faults share a word with probability 2^-25
        # (bank 3 + row 15 + column 7 bits all pinned).
        assert p == pytest.approx(2.0 ** -25)


class TestMultiChipLoss:
    def test_paper_band(self):
        # Table IV: 5.8e-4; the Poisson-pair analytic sits in band.
        p = analytical.multi_chip_data_loss_probability()
        assert 1e-4 < p < 2e-3

    def test_scales_with_rank_width(self):
        xed9 = analytical.multi_chip_data_loss_probability(chips_per_rank=9)
        ck18 = analytical.multi_chip_data_loss_probability(chips_per_rank=18)
        # C(18,2)/C(9,2) = 4.25: the paper's "XED is 4x better than
        # Chipkill because it has half the chips" argument.
        assert ck18 / xed9 == pytest.approx(153 / 36, rel=0.05)


class TestTableIV:
    def test_rows_complete(self):
        table = analytical.table_iv()
        rows = table.rows()
        assert len(rows) == 4
        assert table.scaling_sdc_or_due == 0.0
        assert table.word_failure_due == pytest.approx(6.1e-6, rel=0.05)

    def test_format(self):
        text = analytical.table_iv().format_table()
        assert "Table IV" in text and "0 (none)" in text


class TestTableIII:
    def test_paper_column(self):
        rows = analytical.table_iii()
        assert rows[1e-4]["paper_approx"] == pytest.approx(2.05e-5, rel=0.01)
        assert rows[1e-5]["paper_approx"] == pytest.approx(2.05e-7, rel=0.01)
        assert rows[1e-6]["paper_approx"] == pytest.approx(2.05e-9, rel=0.01)

    def test_exact_larger_than_approx(self):
        rows = analytical.table_iii()
        for vals in rows.values():
            assert vals["exact"] > vals["paper_approx"]
