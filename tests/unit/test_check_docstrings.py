"""Unit tests for the docstring-coverage gate in tools/."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
_spec = importlib.util.spec_from_file_location(
    "check_docstrings", REPO_ROOT / "tools" / "check_docstrings.py"
)
check_docstrings = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docstrings)


def _write(tmp_path, source):
    path = tmp_path / "mod.py"
    path.write_text(source)
    return path


def test_fully_documented_file_passes(tmp_path):
    path = _write(tmp_path, '"""Module."""\n\n\ndef f():\n    """Doc."""\n')
    assert check_docstrings.check_file(path) == []


def test_missing_module_docstring_flagged(tmp_path):
    path = _write(tmp_path, "x = 1\n")
    violations = check_docstrings.check_file(path)
    assert [(v[2], v[3]) for v in violations] == [("module", "mod")]


def test_public_function_class_and_method_flagged(tmp_path):
    path = _write(
        tmp_path,
        '"""Module."""\n\n\n'
        "def f():\n    pass\n\n\n"
        "class C:\n"
        "    def m(self):\n        pass\n",
    )
    flagged = {(v[2], v[3]) for v in check_docstrings.check_file(path)}
    assert flagged == {("function", "f"), ("class", "C"), ("method", "C.m")}


def test_private_names_and_dunders_exempt(tmp_path):
    path = _write(
        tmp_path,
        '"""Module."""\n\n\n'
        "def _helper():\n    pass\n\n\n"
        "class C:\n"
        '    """Doc."""\n\n'
        "    def __init__(self):\n        pass\n\n"
        "    def _internal(self):\n        pass\n",
    )
    assert check_docstrings.check_file(path) == []


def test_private_class_contents_not_recursed(tmp_path):
    path = _write(
        tmp_path,
        '"""Module."""\n\n\n'
        "class _Hidden:\n"
        "    def visible_name(self):\n        pass\n",
    )
    assert check_docstrings.check_file(path) == []


def test_main_exit_codes(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text('"""Module."""\n')
    bad = tmp_path / "bad.py"
    bad.write_text("def f():\n    pass\n")
    assert check_docstrings.main([str(good)]) == 0
    assert check_docstrings.main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "function f" in out
    assert check_docstrings.main([]) == 2
    assert check_docstrings.main([str(tmp_path / "nope")]) == 2


def test_repo_source_tree_is_clean():
    assert check_docstrings.check_tree(REPO_ROOT / "src" / "repro") == []
