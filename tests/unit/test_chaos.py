"""Chaos-harness tests: recovery paths under real worker failures.

Each test disturbs a sharded run -- a worker killed with ``os._exit``,
a worker hung past its deadline, a checkpoint with a corrupted tail --
and proves the recovered merged result is bit-identical to an
undisturbed reference run.  These are the multiprocessing
(``--workers 4``) twins of the in-process recovery tests in
``test_runtime.py``; they are slower (each pool rebuild spawns fresh
interpreters) and are additionally exercised as a dedicated CI step.
"""

import pytest

from repro.faultsim.campaign import run_xed_campaign
from repro.faultsim.schemes import XedScheme
from repro.faultsim.simulator import MonteCarloConfig, simulate
from repro.obs import OBS
from repro.runtime import (
    ChaosPolicy,
    RuntimePolicy,
    ShardFailure,
    corrupt_checkpoint_tail,
    load_checkpoint,
    use_policy,
)

CFG = MonteCarloConfig(num_systems=30_000, seed=11)
SHARD_SIZE = 10_000
WORKERS = 4


@pytest.fixture(scope="module")
def reference():
    """The undisturbed merged result every recovery must reproduce."""
    return simulate(XedScheme(), CFG, workers=1, shard_size=SHARD_SIZE)


def _assert_identical(result, reference):
    assert result.failure_times_hours == reference.failure_times_hours
    assert result.kinds == reference.kinds
    assert result.num_systems == reference.num_systems


@pytest.mark.timeout(300)
class TestPoolCrashRecovery:
    def test_worker_crash_is_retried_bit_identically(self, tmp_path, reference):
        policy = RuntimePolicy(
            checkpoint_dir=str(tmp_path),
            chaos=ChaosPolicy(crash_shards=(1,)),
            backoff_base_s=0.01,
        )
        with use_policy(policy):
            recovered = simulate(
                XedScheme(), CFG, workers=WORKERS, shard_size=SHARD_SIZE
            )
        _assert_identical(recovered, reference)
        assert policy.outcomes[0].crashes >= 1
        assert policy.outcomes[0].completeness == 1.0

    def test_permanent_crash_checkpoints_then_resumes(self, tmp_path, reference):
        failing = RuntimePolicy(
            checkpoint_dir=str(tmp_path), max_retries=1,
            chaos=ChaosPolicy(crash_shards=(2,), trigger_attempts=99),
            backoff_base_s=0.01,
        )
        with use_policy(failing):
            with pytest.raises(ShardFailure) as exc:
                simulate(
                    XedScheme(), CFG, workers=WORKERS, shard_size=SHARD_SIZE
                )
        _, records, _ = load_checkpoint(exc.value.checkpoint_path)
        assert 2 not in records

        resumed_policy = RuntimePolicy(resume_dir=str(tmp_path))
        with use_policy(resumed_policy):
            resumed = simulate(
                XedScheme(), CFG, workers=WORKERS, shard_size=SHARD_SIZE
            )
        _assert_identical(resumed, reference)
        assert resumed_policy.outcomes[0].resumed_shards == len(records)


@pytest.mark.timeout(300)
class TestPoolHangRecovery:
    def test_hung_worker_times_out_and_result_is_identical(
        self, tmp_path, reference
    ):
        policy = RuntimePolicy(
            checkpoint_dir=str(tmp_path), shard_timeout_s=5.0,
            chaos=ChaosPolicy(hang_shards=(2,), hang_s=120.0),
            backoff_base_s=0.01,
        )
        with use_policy(policy):
            recovered = simulate(
                XedScheme(), CFG, workers=WORKERS, shard_size=SHARD_SIZE
            )
        _assert_identical(recovered, reference)
        assert policy.outcomes[0].timeouts >= 1


@pytest.mark.timeout(300)
class TestCheckpointCorruptionRecovery:
    def test_corrupted_tail_rerun_is_bit_identical(self, tmp_path, reference):
        first = RuntimePolicy(checkpoint_dir=str(tmp_path))
        with use_policy(first):
            simulate(XedScheme(), CFG, workers=WORKERS, shard_size=SHARD_SIZE)
        ckpt = first.outcomes[0].checkpoint_path
        assert corrupt_checkpoint_tail(ckpt, nbytes=8, seed=7) > 0

        resumed_policy = RuntimePolicy(resume_dir=str(tmp_path))
        with use_policy(resumed_policy):
            resumed = simulate(
                XedScheme(), CFG, workers=WORKERS, shard_size=SHARD_SIZE
            )
        _assert_identical(resumed, reference)
        outcome = resumed_policy.outcomes[0]
        assert outcome.discarded_records == 1
        # exactly the damaged shard re-ran; the intact prefix replayed
        assert outcome.resumed_shards == outcome.total_shards - 1


@pytest.mark.timeout(300)
class TestCampaignRecovery:
    def test_campaign_crash_resume_is_bit_identical(self, tmp_path):
        reference = run_xed_campaign(trials=8, seed=5, workers=1, shard_size=2)
        failing = RuntimePolicy(
            checkpoint_dir=str(tmp_path), max_retries=0,
            chaos=ChaosPolicy(fault_shards=(2,), trigger_attempts=99),
            backoff_base_s=0.01,
        )
        with use_policy(failing):
            with pytest.raises(ShardFailure):
                run_xed_campaign(trials=8, seed=5, workers=1, shard_size=2)

        resumed_policy = RuntimePolicy(resume_dir=str(tmp_path))
        with use_policy(resumed_policy):
            resumed = run_xed_campaign(
                trials=8, seed=5, workers=1, shard_size=2
            )
        assert [s.outcome for s in resumed.scenarios] == [
            s.outcome for s in reference.scenarios
        ]
        assert resumed.counts == reference.counts
        assert resumed_policy.outcomes[0].resumed_shards > 0

    def test_campaign_pool_crash_recovery(self, tmp_path):
        reference = run_xed_campaign(trials=8, seed=5, workers=1, shard_size=2)
        policy = RuntimePolicy(
            checkpoint_dir=str(tmp_path),
            chaos=ChaosPolicy(crash_shards=(1,)),
            backoff_base_s=0.01,
        )
        with use_policy(policy):
            recovered = run_xed_campaign(
                trials=8, seed=5, workers=WORKERS, shard_size=2
            )
        assert [s.outcome for s in recovered.scenarios] == [
            s.outcome for s in reference.scenarios
        ]
        assert policy.outcomes[0].crashes >= 1
