"""Unit tests for the XED controller: the Section V-VII decision tree."""

import pytest

from repro.core import ReadStatus, XedController
from repro.dram import XedDimm
from repro.dram.chip import FaultGranularity
from repro.dram.mode_registers import ModeRegisters

LINE = [0x1000_0000_0000_0000 + i for i in range(8)]


def system(seed=1, scaling=0.0, **kwargs):
    dimm = XedDimm.build(seed=seed, scaling_ber=scaling)
    return dimm, XedController(dimm, seed=seed + 7, **kwargs)


class TestProvisioning:
    def test_catch_words_unique_per_chip(self):
        _, ctrl = system(1)
        assert len(set(ctrl.catch_words)) == 9

    def test_xed_enable_set_on_all_chips(self):
        dimm, _ = system(2)
        assert all(chip.regs.xed_enable for chip in dimm.chips)

    def test_chips_hold_controller_copy(self):
        dimm, ctrl = system(3)
        for chip, cw in zip(dimm.chips, ctrl.catch_words):
            assert chip.regs.catch_word == cw

    def test_storage_overhead_65_bits_per_chip(self):
        dimm, _ = system(4)
        assert all(
            chip.regs.storage_overhead_bits == 65 for chip in dimm.chips
        )

    def test_mode_registers_count_mrs_writes(self):
        regs = ModeRegisters()
        regs.set_catch_word(5)
        regs.set_xed_enable(True)
        assert regs.mrs_writes == 2

    def test_mode_register_range_check(self):
        with pytest.raises(ValueError):
            ModeRegisters(catch_word_bits=32).set_catch_word(1 << 32)


class TestCleanPath:
    def test_clean_read(self):
        _, ctrl = system(5)
        ctrl.write_line(0, 0, 0, LINE)
        result = ctrl.read_line(0, 0, 0)
        assert result.status is ReadStatus.CLEAN
        assert result.words == LINE
        assert result.ok

    def test_data_bytes_little_endian(self):
        _, ctrl = system(6)
        ctrl.write_line(0, 0, 0, LINE)
        data = ctrl.read_line(0, 0, 0).data
        assert len(data) == 64
        assert int.from_bytes(data[:8], "little") == LINE[0]

    def test_write_bytes_roundtrip(self):
        _, ctrl = system(7)
        payload = bytes(range(64))
        ctrl.write_bytes(0, 1, 2, payload)
        assert ctrl.read_line(0, 1, 2).data == payload

    def test_write_bytes_length_check(self):
        _, ctrl = system(8)
        with pytest.raises(ValueError):
            ctrl.write_bytes(0, 0, 0, b"short")


class TestErasurePath:
    @pytest.mark.parametrize("granularity", [
        FaultGranularity.WORD,
        FaultGranularity.ROW,
        FaultGranularity.BANK,
        FaultGranularity.CHIP,
    ])
    def test_single_chip_fault_corrected(self, granularity):
        dimm, ctrl = system(9)
        ctrl.write_line(0, 0, 0, LINE)
        dimm.inject_chip_failure(chip=5, granularity=granularity)
        result = ctrl.read_line(0, 0, 0)
        assert result.ok and result.words == LINE
        assert result.status is ReadStatus.CORRECTED_ERASURE
        assert result.reconstructed_chip == 5

    def test_every_chip_position_recoverable(self):
        for chip in range(9):
            dimm, ctrl = system(20 + chip)
            ctrl.write_line(0, 0, 0, LINE)
            dimm.inject_chip_failure(chip=chip)
            result = ctrl.read_line(0, 0, 0)
            assert result.ok and result.words == LINE, f"chip {chip}"

    def test_stats_track_corrections(self):
        dimm, ctrl = system(10)
        ctrl.write_line(0, 0, 0, LINE)
        dimm.inject_chip_failure(chip=1)
        ctrl.read_line(0, 0, 0)
        assert ctrl.stats["catch_words_seen"] == 1
        assert ctrl.stats["erasure_corrections"] == 1


class TestCollisionPath:
    def test_collision_detected_and_rotated(self):
        dimm, ctrl = system(11)
        cw = ctrl.catch_words[2]
        line = list(LINE)
        line[2] = cw  # store the catch-word itself as data
        ctrl.write_line(0, 0, 3, line)
        result = ctrl.read_line(0, 0, 3)
        assert result.collision
        assert result.words == line  # data still correct
        assert ctrl.stats["collisions"] == 1
        assert ctrl.catch_words[2] != cw  # rotated
        assert dimm.chips[2].regs.catch_word == ctrl.catch_words[2]

    def test_read_after_rotation_is_clean(self):
        _, ctrl = system(12)
        line = list(LINE)
        line[4] = ctrl.catch_words[4]
        ctrl.write_line(0, 0, 4, line)
        ctrl.read_line(0, 0, 4)
        result = ctrl.read_line(0, 0, 4)
        assert result.status is ReadStatus.CLEAN
        assert result.words == line

    def test_rotation_is_cheap(self):
        """Section V-D3: only MRS writes, no data scrub."""
        dimm, ctrl = system(13)
        line = list(LINE)
        line[0] = ctrl.catch_words[0]
        ctrl.write_line(0, 0, 5, line)
        writes_before = dimm.chips[0].stats["writes"]
        mrs_before = dimm.chips[0].regs.mrs_writes
        ctrl.read_line(0, 0, 5)
        assert dimm.chips[0].stats["writes"] == writes_before
        assert dimm.chips[0].regs.mrs_writes == mrs_before + 1


class TestSerialModePath:
    def _multi_weak_column(self, dimm, bank=0, row=0):
        for col in range(128):
            weak = [
                i for i, chip in enumerate(dimm.chips)
                if chip.weak_bit(bank, row, col) is not None
            ]
            if len(weak) >= 2:
                return col, weak
        pytest.skip("no multi-weak column at this seed")

    def test_multi_catch_word_scaling_recovered(self):
        dimm, ctrl = system(14, scaling=8e-3)
        col, weak = self._multi_weak_column(dimm)
        ctrl.write_line(0, 0, col, LINE)
        result = ctrl.read_line(0, 0, col)
        assert result.status is ReadStatus.CORRECTED_ONDIE
        assert result.words == LINE
        assert result.serial_mode
        assert set(weak) <= set(result.catch_word_chips)
        assert ctrl.stats["serial_mode_entries"] == 1

    def test_serial_mode_restores_xed_enable(self):
        dimm, ctrl = system(15, scaling=8e-3)
        col, _ = self._multi_weak_column(dimm)
        ctrl.write_line(0, 0, col, LINE)
        ctrl.read_line(0, 0, col)
        assert all(chip.regs.xed_enable for chip in dimm.chips)

    def test_chip_failure_amid_scaling_faults(self):
        """Section VII-C: runtime chip failure + scaling catch-words."""
        dimm, ctrl = system(16, scaling=8e-3)
        col, weak = self._multi_weak_column(dimm)
        victim = next(i for i in range(9) if i not in weak)
        for c in range(128):
            ctrl.write_line(0, 0, c, LINE)
        dimm.inject_chip_failure(
            chip=victim, granularity=FaultGranularity.BANK, bank=0
        )
        result = ctrl.read_line(0, 0, col)
        assert result.ok and result.words == LINE
        assert result.status in (
            ReadStatus.CORRECTED_DIAGNOSED, ReadStatus.CORRECTED_ERASURE
        )


class TestDiagnosisPath:
    def test_fct_marks_dead_chip_and_fast_paths(self):
        dimm, ctrl = system(17, fct_capacity=4)
        for row in range(4):
            for col in range(128):
                ctrl.write_line(0, row, col, LINE)
        dimm.inject_chip_failure(
            chip=3, granularity=FaultGranularity.BANK, bank=0
        )
        # Reads across enough rows should eventually convict chip 3 in
        # the FCT via the catch-word flow (inter-line diagnosis records
        # only run on the no-catch-word path; force it by diagnosing).
        from repro.core.diagnosis import inter_line_diagnosis

        for row in range(4):
            result = inter_line_diagnosis(dimm, ctrl.catch_words, 0, row)
            assert result.faulty_chip == 3
            ctrl.fct.record(0, row, 3)
        assert ctrl.fct.dead_chip == 3

    def test_scrub_line_rewrites_corrected_data(self):
        dimm, ctrl = system(18)
        ctrl.write_line(0, 0, 9, LINE)
        dimm.chips[2].inject(
            __import__("repro.dram.chip", fromlist=["InjectedFault"]).InjectedFault(
                FaultGranularity.WORD, False, bank=0, row=0, column=9
            )
        )
        result = ctrl.scrub_line(0, 0, 9)
        assert result.ok and result.words == LINE
        # Transient damage gone after the scrub's rewrite.
        follow_up = ctrl.read_line(0, 0, 9)
        assert follow_up.status is ReadStatus.CLEAN

    def test_verify_line(self):
        dimm, ctrl = system(19)
        ctrl.write_line(0, 0, 0, LINE)
        assert ctrl.verify_line(0, 0, 0)
