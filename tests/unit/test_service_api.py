"""HTTP surface of the campaign service, over a real loopback socket.

One in-process :class:`CampaignServer` on an ephemeral port serves the
whole module; tests drive it with ``urllib`` exactly as an external
client would.  Covers every endpoint's happy path and its error
contract (400 malformed/invalid specs, 404 unknowns, 409 not-ready
results, 503 draining readiness), plus spec validation rules that
guard the cache identity.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import (
    CampaignService,
    ExperimentSpec,
    ServiceSpecError,
    create_server,
)

SPEC = {"schemes": ["xed"], "systems": 400, "shard_size": 200, "seed": 5}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    service = CampaignService(tmp_path_factory.mktemp("service"))
    srv = create_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    service.shutdown(timeout=5.0)


@pytest.fixture(scope="module")
def client(server):
    base = f"http://127.0.0.1:{server.server_address[1]}"

    def request(method, path, body=None):
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        req = urllib.request.Request(base + path, data=data, method=method)
        try:
            with urllib.request.urlopen(req, timeout=10.0) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    return request


def _poll_done(client, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, raw = client("GET", f"/v1/jobs/{job_id}")
        doc = json.loads(raw)
        if doc["state"] in ("done", "failed"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


class TestEndpoints:
    def test_health_and_readiness(self, client):
        status, raw = client("GET", "/healthz")
        assert status == 200 and json.loads(raw)["status"] == "ok"
        status, raw = client("GET", "/readyz")
        assert status == 200 and json.loads(raw)["status"] == "ready"

    def test_submit_execute_fetch_roundtrip(self, client):
        status, raw = client("POST", "/v1/jobs", SPEC)
        assert status == 202
        submitted = json.loads(raw)
        assert submitted["disposition"] == "created"
        job_id = submitted["job_id"]
        doc = _poll_done(client, job_id)
        assert doc["state"] == "done"
        assert doc["error"] is None
        progress = doc["progress"]
        assert progress["completed_shards"] == progress["total_shards"] == 2
        # Scoped per-job telemetry came back with the job.
        assert doc["metrics"] is not None
        status, result = client("GET", f"/v1/jobs/{job_id}/result")
        assert status == 200
        envelope = json.loads(result)
        assert envelope["fingerprint"] == submitted["fingerprint"]
        body = envelope["body"]
        assert body["table"].startswith("400 systems, 7 years")
        assert body["results"][0]["scheme_name"].startswith("XED")
        assert body["provenance"]["complete"] is True
        # The cache endpoint serves the very same bytes.
        status, cached = client(
            "GET", f"/v1/cache/{submitted['fingerprint']}"
        )
        assert status == 200
        assert cached == result

    def test_result_before_done_is_409(self, client, server):
        # Submit through the service with a spec large enough that we
        # can observe the pending window via the public API contract --
        # simpler: ask for an unknown-but-queued state by submitting
        # and asking immediately; if the executor already won the race,
        # the 409 contract is still proven by the failed/unknown paths
        # below, so only assert when we actually caught it pending.
        status, raw = client(
            "POST", "/v1/jobs",
            {**SPEC, "systems": 4_000, "shard_size": 200, "seed": 77},
        )
        job_id = json.loads(raw)["job_id"]
        status, raw = client("GET", f"/v1/jobs/{job_id}/result")
        if status == 409:
            assert "not ready" in json.loads(raw)["error"]
        _poll_done(client, job_id)
        status, _ = client("GET", f"/v1/jobs/{job_id}/result")
        assert status == 200

    def test_unknown_job_is_404(self, client):
        status, raw = client("GET", "/v1/jobs/job-99999999")
        assert status == 404
        status, raw = client("GET", "/v1/jobs/job-99999999/result")
        assert status == 404

    def test_unknown_cache_entry_is_404(self, client):
        status, _ = client("GET", "/v1/cache/" + "0" * 64)
        assert status == 404

    def test_invalid_cache_fingerprint_is_400(self, client):
        status, _ = client("GET", "/v1/cache/not-hex!")
        assert status == 400

    def test_non_object_body_is_400(self, client):
        status, _ = client("POST", "/v1/jobs", "not an object")
        assert status == 400
        status, _ = client("POST", "/v1/jobs", [1, 2, 3])
        assert status == 400

    def test_invalid_spec_is_400_with_reason(self, client):
        status, raw = client("POST", "/v1/jobs", {"schemes": ["bogus"]})
        assert status == 400
        assert "unknown scheme" in json.loads(raw)["error"]

    def test_unknown_endpoint_is_404(self, client):
        assert client("GET", "/v1/nope")[0] == 404
        assert client("POST", "/v1/nope", {})[0] == 404

    def test_stats_counters_are_flat_and_monotonic(self, client):
        status, raw = client("GET", "/v1/stats")
        assert status == 200
        stats = json.loads(raw)
        for key in (
            "jobs.submitted", "jobs.executed", "jobs.coalesced",
            "jobs.failed", "cache.hits", "cache.misses",
            "cache.corruptions", "cache.stores",
        ):
            assert isinstance(stats[key], int)
        assert stats["jobs.executed"] >= 1


class TestSpecValidation:
    def test_unknown_key_rejected(self):
        with pytest.raises(ServiceSpecError, match="scrub_hourss"):
            ExperimentSpec.from_dict({**SPEC, "scrub_hourss": 6})

    def test_empty_schemes_rejected(self):
        with pytest.raises(ServiceSpecError, match="non-empty"):
            ExperimentSpec.from_dict({"schemes": []})

    def test_analytical_backend_rejected(self):
        with pytest.raises(ServiceSpecError, match="analytical"):
            ExperimentSpec.from_dict(
                {**SPEC, "faultsim_backend": "analytical"}
            )

    def test_bad_numerics_rejected(self):
        with pytest.raises(ServiceSpecError):
            ExperimentSpec.from_dict({**SPEC, "systems": 0})
        with pytest.raises(ServiceSpecError):
            ExperimentSpec.from_dict({**SPEC, "years": -1})
        with pytest.raises(ServiceSpecError):
            ExperimentSpec.from_dict({**SPEC, "workers": 0})
        with pytest.raises(ServiceSpecError):
            ExperimentSpec.from_dict({**SPEC, "scrub_hours": 0})

    def test_invalid_chaos_spec_rejected(self):
        with pytest.raises(ServiceSpecError, match="chaos"):
            ExperimentSpec.from_dict({**SPEC, "chaos": "nonsense=1"})

    def test_shard_size_is_resolved_into_identity(self):
        # An omitted shard_size resolves to the engine default *before*
        # fingerprinting, so "default" and "explicit default" are the
        # same experiment.
        from repro.faultsim.simulator import DEFAULT_SHARD_SIZE

        implicit = ExperimentSpec.from_dict({"schemes": ["xed"]})
        explicit = ExperimentSpec.from_dict(
            {"schemes": ["xed"], "shard_size": DEFAULT_SHARD_SIZE}
        )
        assert implicit.shard_size == DEFAULT_SHARD_SIZE
        assert implicit.fingerprint() == explicit.fingerprint()
