"""Unit tests for the SECDED miscorrection profiling."""

import pytest

from repro.ecc import CRC8ATMCode, HammingSECDED
from repro.ecc.miscorrection import (
    MiscorrectionProfile,
    hamming_chip_error_sdc_fraction,
    measure_lane_error_profile,
)
from repro.faultsim.schemes import EccDimmScheme


class TestProfileMeasurement:
    def test_profile_sums_to_one(self):
        p = measure_lane_error_profile(HammingSECDED(), samples=3000)
        assert p.detected + p.miscorrected + p.silent == pytest.approx(1.0)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            MiscorrectionProfile(0.5, 0.5, 0.5)

    def test_deterministic_given_seed(self):
        a = measure_lane_error_profile(HammingSECDED(), samples=2000, seed=1)
        b = measure_lane_error_profile(HammingSECDED(), samples=2000, seed=1)
        assert a == b

    def test_crc8_detects_more_lane_errors_than_hamming(self):
        """The Table-II ordering carries into the miscorrection study:
        a degree-8 CRC detects every in-lane burst that Hamming
        miscorrects."""
        ham = measure_lane_error_profile(HammingSECDED(), samples=6000)
        crc = measure_lane_error_profile(CRC8ATMCode(), samples=6000)
        assert crc.detected > ham.detected
        assert crc.silent == 0.0  # no lane error is a CRC8 codeword

    def test_lane_choice_does_not_change_story(self):
        lane0 = measure_lane_error_profile(HammingSECDED(), lane=0, samples=4000)
        lane7 = measure_lane_error_profile(HammingSECDED(), lane=7, samples=4000)
        assert lane0.sdc_fraction == pytest.approx(
            lane7.sdc_fraction, abs=0.15
        )

    def test_hamming_sdc_fraction_band(self):
        frac = hamming_chip_error_sdc_fraction(10000)
        assert 0.3 < frac < 0.6


class TestSchemeIntegration:
    def test_ecc_dimm_defaults_to_measured_fraction(self):
        scheme = EccDimmScheme()
        assert scheme.sdc_fraction == pytest.approx(
            hamming_chip_error_sdc_fraction(), abs=1e-12
        )

    def test_override_still_supported(self):
        assert EccDimmScheme(sdc_fraction=0.1).sdc_fraction == 0.1


class TestBackendEquality:
    def test_profiles_bit_identical_across_backends(self):
        """Both backends classify the identical drawn sample set."""
        for code in (HammingSECDED(), CRC8ATMCode()):
            scalar = measure_lane_error_profile(code, samples=4000)
            batched = measure_lane_error_profile(
                code, samples=4000, backend="batched"
            )
            assert scalar == batched

    def test_lane_and_width_respected_by_batched(self):
        scalar = measure_lane_error_profile(
            HammingSECDED(), lane=3, lane_bits=4, samples=3000
        )
        batched = measure_lane_error_profile(
            HammingSECDED(), lane=3, lane_bits=4, samples=3000,
            backend="batched",
        )
        assert scalar == batched

    def test_sdc_fraction_backend_invariant(self):
        assert hamming_chip_error_sdc_fraction(
            8000
        ) == hamming_chip_error_sdc_fraction(8000, backend="batched")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            measure_lane_error_profile(
                HammingSECDED(), samples=100, backend="turbo"
            )

    def test_scheme_bind_backend_keeps_measured_fraction(self):
        scheme = EccDimmScheme()
        before = scheme.sdc_fraction
        scheme.bind_ecc_backend("batched")
        assert scheme.sdc_fraction == before

    def test_scheme_bind_backend_keeps_override(self):
        scheme = EccDimmScheme(sdc_fraction=0.25)
        scheme.bind_ecc_backend("batched")
        assert scheme.sdc_fraction == 0.25
