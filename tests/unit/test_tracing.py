"""Trace-tree semantics: deterministic span IDs across worker counts.

The load-bearing property is that one campaign run yields the *same*
span tree whether its shards execute in-process or on a pool of worker
processes -- span IDs derive from the shard plan, never from
scheduling.  These tests assert that directly (workers=1 vs workers=4
simulate runs), plus the dotted-ID allocation rules, cross-process
``TraceContext`` grafting, root reachability, and the Chrome
trace-event export.
"""

import json

import pytest

from repro.obs import (
    OBS,
    EventTrace,
    TraceContext,
    current_context,
    shard_span,
    span,
    span_records,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.events import read_jsonl


@pytest.fixture(autouse=True)
def _clean_obs():
    was_enabled = OBS.enabled
    yield
    OBS.enabled = was_enabled
    OBS.progress_enabled = False
    OBS.reset()


def _spans():
    return span_records(OBS.trace.to_records())


class TestSpanIds:
    def test_root_is_zero_children_are_ordinals(self):
        OBS.enable()
        with span("root_s"):
            with span("child_s"):
                pass
            with span("child_s"):
                pass
        by_name = {}
        for s in _spans():
            by_name.setdefault(s["name"], []).append(s)
        assert by_name["root_s"][0]["span_id"] == "0"
        assert by_name["root_s"][0]["parent_id"] is None
        assert [s["span_id"] for s in by_name["child_s"]] == ["0.1", "0.2"]
        assert all(s["parent_id"] == "0" for s in by_name["child_s"])

    def test_nested_ids_extend_the_dotted_path(self):
        OBS.enable()
        with span("a_s"):
            with span("b_s"):
                with span("c_s"):
                    ctx = current_context()
                    assert ctx.span_id == "0.1.1"
        ids = {s["name"]: s["span_id"] for s in _spans()}
        assert ids == {"a_s": "0", "b_s": "0.1", "c_s": "0.1.1"}

    def test_ordinals_reset_between_traces(self):
        OBS.enable()
        with span("first_s"):
            with span("inner_s"):
                pass
        with span("second_s"):
            with span("inner_s"):
                pass
        inner_ids = [
            s["span_id"] for s in _spans() if s["name"] == "inner_s"
        ]
        # Both traces allocate "0.1" -- the first root's close purged
        # its ordinal counters.
        assert inner_ids == ["0.1", "0.1"]
        trace_ids = {s["trace_id"] for s in _spans()}
        assert len(trace_ids) == 2

    def test_disabled_span_yields_none_and_records_nothing(self):
        OBS.disable()
        with span("quiet_s") as ctx:
            assert ctx is None
            assert current_context() is None
        assert _spans() == []

    def test_current_context_outside_any_span(self):
        OBS.enable()
        assert current_context() is None

    def test_attrs_survive_into_the_record(self):
        OBS.enable()
        with span("labelled_s", scheme="xed", systems=5):
            pass
        (s,) = _spans()
        assert s["attrs"] == {"scheme": "xed", "systems": 5}


class TestShardSpan:
    def test_shard_ids_come_from_the_plan(self):
        OBS.enable()
        with span("run_s") as ctx:
            for i in (2, 0, 1):  # completion order must not matter
                with shard_span(ctx, i):
                    pass
        ids = sorted(
            s["span_id"] for s in _spans() if s["name"] == "shard_s"
        )
        assert ids == ["0.s0", "0.s1", "0.s2"]

    def test_retry_attempt_suffix(self):
        OBS.enable()
        with span("run_s") as ctx:
            with shard_span(ctx, 3, attempt=2):
                pass
        (s,) = [s for s in _spans() if s["name"] == "shard_s"]
        assert s["span_id"] == "0.s3a2"
        assert s["attrs"] == {"shard": 3, "attempt": 2}

    def test_context_grafts_across_pickling(self):
        """A shipped TraceContext parents worker spans into the tree."""
        import pickle

        OBS.enable()
        with span("parent_s") as ctx:
            shipped = pickle.loads(pickle.dumps(ctx))
        assert shipped == TraceContext(ctx.trace_id, "0")
        with shard_span(shipped, 7):
            pass
        (s,) = [s for s in _spans() if s["name"] == "shard_s"]
        assert s["trace_id"] == ctx.trace_id
        assert s["parent_id"] == "0"
        assert s["span_id"] == "0.s7"

    def test_no_context_roots_its_own_trace(self):
        OBS.enable()
        with shard_span(None, 0):
            pass
        (s,) = _spans()
        assert s["parent_id"] is None
        assert s["span_id"] == "0"


def _normalise(records):
    """Strip timing/process fields so trees compare structurally."""
    tree = []
    for s in span_records(records):
        attrs = dict(s.get("attrs") or {})
        attrs.pop("workers", None)  # legitimate config difference
        tree.append(
            {
                "name": s["name"],
                "span_id": s["span_id"],
                "parent_id": s["parent_id"],
                "attrs": attrs,
            }
        )
    tree.sort(key=lambda s: s["span_id"])
    return tree


def _assert_rooted(records):
    """Every span's parent chain must reach a root in the same trace."""
    spans = span_records(records)
    by_id = {(s["trace_id"], s["span_id"]): s for s in spans}
    for s in spans:
        node = s
        hops = 0
        while node["parent_id"] is not None:
            key = (node["trace_id"], node["parent_id"])
            assert key in by_id, f"orphan span {node['span_id']}"
            node = by_id[key]
            hops += 1
            assert hops < 100
        assert node["parent_id"] is None


def _simulate_trace(workers):
    from repro.faultsim import MonteCarloConfig, XedScheme, simulate

    OBS.reset()
    OBS.enable()
    config = MonteCarloConfig(
        num_systems=2000, years=2.0, seed=7, scaling_rate=2.0,
        faultsim_backend="vectorized",
    )
    result = simulate(
        XedScheme(), config, workers=workers, shard_size=500
    )
    return result, OBS.trace.to_records()


class TestCrossProcessTree:
    def test_tree_identical_for_one_and_four_workers(self):
        result_1, records_1 = _simulate_trace(workers=1)
        result_4, records_4 = _simulate_trace(workers=4)
        assert result_1.failure_times_hours == result_4.failure_times_hours
        tree_1, tree_4 = _normalise(records_1), _normalise(records_4)
        assert tree_1 == tree_4
        shard_ids = [
            s["span_id"] for s in tree_1 if s["name"] == "shard_s"
        ]
        assert shard_ids == ["0.s0", "0.s1", "0.s2", "0.s3"]
        _assert_rooted(records_1)
        _assert_rooted(records_4)

    def test_single_trace_single_root(self):
        _, records = _simulate_trace(workers=4)
        spans = span_records(records)
        assert len({s["trace_id"] for s in spans}) == 1
        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 1
        assert roots[0]["name"] == "faultsim.simulate"


class TestChromeExport:
    def test_export_shape(self):
        OBS.enable()
        with span("run_s") as ctx:
            with shard_span(ctx, 0):
                pass
        doc = to_chrome_trace(OBS.trace.to_records())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["spans"] == 2
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "span_id" in event["args"]
        shard = [
            e for e in doc["traceEvents"]
            if e["args"]["span_id"] == "0.s0"
        ]
        assert shard and shard[0]["args"]["parent_id"] == "0"

    def test_trace_id_filter(self):
        OBS.enable()
        with span("first_s"):
            pass
        with span("second_s"):
            pass
        records = OBS.trace.to_records()
        wanted = span_records(records)[0]["trace_id"]
        doc = to_chrome_trace(records, trace_id=wanted)
        assert [e["name"] for e in doc["traceEvents"]] == ["first_s"]

    def test_write_is_valid_json_and_roundtrips(self, tmp_path):
        OBS.enable()
        with span("run_s") as ctx:
            with shard_span(ctx, 1):
                pass
        out = tmp_path / "trace.json"
        count = write_chrome_trace(str(out), OBS.trace.to_records())
        assert count == 2
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == 2

    def test_exporter_accepts_parsed_jsonl(self, tmp_path):
        OBS.enable()
        with span("run_s"):
            pass
        path = tmp_path / "t.jsonl"
        OBS.trace.write_jsonl(str(path))
        doc = to_chrome_trace(read_jsonl(str(path)))
        assert [e["name"] for e in doc["traceEvents"]] == ["run_s"]


class TestSpanTimerContract:
    def test_span_still_feeds_the_timer_histogram(self):
        """The PR-1 contract: span() observes into the name's timer."""
        OBS.enable()
        with span("contract_s"):
            pass
        timers = OBS.registry.snapshot()["timers"]
        assert timers["contract_s"]["count"] == 1

    def test_trace_capacity_still_applies(self):
        OBS.enabled = False
        OBS.trace = EventTrace(capacity=4)
        OBS.enable()
        with span("outer_s"):
            for _ in range(10):
                with span("inner_s"):
                    pass
        assert len(OBS.trace) == 4
