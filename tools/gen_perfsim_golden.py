"""Regenerate the performance-simulator golden corpus.

Runs the **scalar** engine (the golden model) over a fixed set of
(workload, scheme, instructions, seed) cells and records a SHA-256
digest of each cell's canonical observables -- the full
``SimulationResult.to_payload()`` dict, the per-channel JEDEC command
streams and the derived power breakdown -- plus headline numbers for
human eyes.  The tier-1 test ``tests/unit/test_perfsim_golden.py``
replays every entry through *both* backends (scalar and pipeline) and
requires the digests to match, pinning the simulator's exact output
across refactors of either path.

Usage::

    PYTHONPATH=src python tools/gen_perfsim_golden.py

Rewrites ``tests/data/perfsim_golden.json`` in place.  Only run it
when an *intentional* behaviour change invalidates the corpus, and
say so in the commit message.
"""

import hashlib
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.perfsim.configs import SCHEME_CONFIGS  # noqa: E402
from repro.perfsim.engine import simulate_system  # noqa: E402
from repro.perfsim.power import PowerModel  # noqa: E402
from repro.perfsim.timing import SystemTiming  # noqa: E402
from repro.perfsim.workloads import workload_by_name  # noqa: E402

OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "tests"
    / "data"
    / "perfsim_golden.json"
)

#: The corpus plan: every one of the 11 scheme configs appears at least
#: once, spread over workloads with very different memory behaviour
#: (streaming, pointer-chasing, write-heavy, commercial), plus seed and
#: instruction-budget variants so the RNG companion draws and refresh
#: cadence are pinned at more than one horizon.
CASES = [
    {"workload": "libquantum", "scheme": "ecc_dimm"},
    {"workload": "mcf", "scheme": "xed"},
    {"workload": "lbm", "scheme": "xed_scaling"},
    {"workload": "milc", "scheme": "chipkill"},
    {"workload": "comm1", "scheme": "xed_chipkill"},
    {"workload": "omnetpp", "scheme": "double_chipkill"},
    {"workload": "soplex", "scheme": "extra_burst_chipkill"},
    {"workload": "mummer", "scheme": "extra_txn_chipkill"},
    {"workload": "fluid", "scheme": "extra_burst_double_chipkill"},
    {"workload": "comm2", "scheme": "extra_txn_double_chipkill"},
    {"workload": "bwaves", "scheme": "lotecc"},
    {"workload": "mcf", "scheme": "xed", "seed": 7},
    {"workload": "libquantum", "scheme": "ecc_dimm", "instructions": 12_000},
    {"workload": "lbm", "scheme": "xed_chipkill", "seed": 31,
     "instructions": 9_000},
]

BASE = {
    "instructions": 6_000,
    "seed": 2016,
}


def run_case(case, backend):
    """Simulate one corpus cell on the requested backend."""
    merged = {**BASE, **case}
    system = SystemTiming()
    config = SCHEME_CONFIGS[merged["scheme"]]
    result = simulate_system(
        workload_by_name(merged["workload"]),
        config,
        system,
        instructions_per_core=merged["instructions"],
        seed=merged["seed"],
        backend=backend,
        log_commands=True,
    )
    power = PowerModel(timing=system.ddr).compute(result, config)
    return merged, result, power


def digest_of(result, power):
    """SHA-256 over the cell's canonical observable JSON.

    Covers the checkpoint payload, every logged command of every
    channel, and the four power components -- the same surface the
    differential harness compares.
    """
    commands = [
        [
            [c.cmd.name, c.time, c.rank, c.bank, c.row,
             c.data_start, c.data_end]
            for c in log.commands
        ]
        for log in (result.command_logs or [])
    ]
    doc = {
        "result": result.to_payload(),
        "commands": commands,
        "power": {
            "background": power.background,
            "activate": power.activate,
            "read_write": power.read_write,
            "refresh": power.refresh,
        },
    }
    canonical = json.dumps(doc, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def main():
    """Run every corpus case on the scalar engine and write the file."""
    entries = []
    for case in CASES:
        merged, result, power = run_case(case, "scalar")
        entries.append(
            {
                **merged,
                "digest": digest_of(result, power),
                "exec_bus_cycles": result.exec_bus_cycles,
                "reads": result.reads,
                "writes": result.writes,
                "commands": sum(
                    len(log.commands) for log in result.command_logs
                ),
            }
        )
        print(
            f"{merged['workload']:>12} {merged['scheme']:<28} "
            f"seed={merged['seed']:<5} cycles={result.exec_bus_cycles:<10g} "
            f"digest={entries[-1]['digest'][:12]}"
        )
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(
        json.dumps(
            {
                "comment": (
                    "Golden digests of scalar-engine perfsim cells "
                    "(payload + command logs + power); regenerate with "
                    "tools/gen_perfsim_golden.py"
                ),
                "entries": entries,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {len(entries)} entries to {OUTPUT}")


if __name__ == "__main__":
    main()
