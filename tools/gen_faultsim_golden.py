"""Regenerate the fault-simulation golden corpus.

Runs the **scalar** adjudication backend (the golden model) over a
fixed set of (scheme, seed, config) tuples and records a SHA-256
digest of each canonical ``ReliabilityResult.to_payload()`` JSON,
plus headline counts for human eyes.  The tier-1 test
``tests/unit/test_faultsim_golden.py`` replays every entry through
*both* backends and requires the digests to match, pinning the
simulator's exact output across refactors of either path.

Usage::

    PYTHONPATH=src python tools/gen_faultsim_golden.py

Rewrites ``tests/data/faultsim_golden.json`` in place.  Only run it
when an *intentional* behaviour change invalidates the corpus, and
say so in the commit message.
"""

import hashlib
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.faultsim import FitTable, MonteCarloConfig, simulate  # noqa: E402
from repro.faultsim import (  # noqa: E402
    ChipkillScheme,
    DoubleChipkillScheme,
    EccDimmScheme,
    NonEccScheme,
    XedChipkillScheme,
    XedScheme,
)

OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "tests"
    / "data"
    / "faultsim_golden.json"
)

#: Scheme key -> constructor.  ECC-DIMM pins its DUE/SDC split so the
#: corpus does not depend on the measured decoder profile.
SCHEMES = {
    "non_ecc": lambda: NonEccScheme(),
    "ecc_dimm": lambda: EccDimmScheme(sdc_fraction=0.44),
    "xed": lambda: XedScheme(),
    "xed_misdiag": lambda: XedScheme(misdiagnosis_sdc_probability=5e-3),
    "chipkill": lambda: ChipkillScheme(),
    "double_chipkill": lambda: DoubleChipkillScheme(),
    "xed_chipkill": lambda: XedChipkillScheme(),
}

#: The corpus plan: every scheme at the baseline config, plus scaling
#: and scrubbing variants for the schemes whose kernels treat
#: promotion/deactivation specially.
CASES = [
    {"scheme": "non_ecc", "seed": 2016},
    {"scheme": "ecc_dimm", "seed": 2016},
    {"scheme": "xed", "seed": 2016},
    {"scheme": "xed_misdiag", "seed": 11},
    {"scheme": "chipkill", "seed": 2016},
    {"scheme": "double_chipkill", "seed": 2016},
    {"scheme": "xed_chipkill", "seed": 2016},
    {"scheme": "xed", "seed": 7, "scaling_rate": 1e-2,
     "scrub_hours": 168.0},
    {"scheme": "chipkill", "seed": 7, "scaling_rate": 1e-3,
     "scrub_hours": 24.0},
    {"scheme": "xed_chipkill", "seed": 13, "scrub_hours": 168.0},
]

BASE = {
    "num_systems": 2_500,
    "fit_scale": 30.0,
    "shard_size": 1_000,
    "scaling_rate": 0.0,
    "scrub_hours": None,
}


def config_for(case):
    """Build the MonteCarloConfig described by a corpus entry."""
    merged = {**BASE, **case}
    return merged, MonteCarloConfig(
        num_systems=merged["num_systems"],
        seed=merged["seed"],
        fit=FitTable().scaled(merged["fit_scale"]),
        scaling_rate=merged["scaling_rate"],
        scrub_hours=merged["scrub_hours"],
        faultsim_backend="scalar",
    )


def digest_of(result):
    """SHA-256 of the canonical checkpoint payload JSON."""
    canonical = json.dumps(result.to_payload(), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def main():
    """Run every corpus case on the scalar backend and write the file."""
    entries = []
    for case in CASES:
        merged, config = config_for(case)
        result = simulate(
            SCHEMES[case["scheme"]](),
            config,
            shard_size=merged["shard_size"],
        )
        entries.append(
            {
                **merged,
                "digest": digest_of(result),
                "failures": result.failures,
                "due": result.due_count,
                "sdc": result.sdc_count,
            }
        )
        print(
            f"{case['scheme']:>16} seed={merged['seed']:<6} "
            f"failures={result.failures:<5} digest={entries[-1]['digest'][:12]}"
        )
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(
        json.dumps(
            {
                "comment": (
                    "Golden digests of scalar-backend simulate() payloads; "
                    "regenerate with tools/gen_faultsim_golden.py"
                ),
                "entries": entries,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {len(entries)} entries to {OUTPUT}")


if __name__ == "__main__":
    main()
