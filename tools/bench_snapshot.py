#!/usr/bin/env python
"""Perf-regression ledger: record and compare benchmark snapshots.

The ledger keeps the reproduction's performance honest across PRs.
``record`` times a small fixed set of hot paths (scalar ECC decode,
batched ECC decode, scalar and vectorized Monte-Carlo adjudication,
the analytical Markov solver vs vectorized Monte-Carlo on the full
Fig-7 sweep, the scalar vs event-driven pipeline perfsim engines
on a Fig-11 cell, and the distributed coordinator's merge throughput
over loopback workers) and writes a ``BENCH_<stamp>.json`` snapshot into
``benchmarks/snapshots/``; one snapshot per landed optimisation is
committed alongside the code.  ``compare`` re-times the same paths and
diffs them against the latest committed snapshot (or an explicit
baseline), failing when a metric regresses beyond the tolerance band.

Metrics come in two classes:

``ratio``
    Machine-independent speedups (batched over scalar ECC, vectorized
    over scalar faultsim).  These are compared by default: a committed
    baseline from one host is a meaningful bound on another.

``wall``
    Raw wall-clock seconds.  Recorded for the ledger's history but
    only compared under ``--include-wall``, since absolute times move
    with the host.

Usage::

    PYTHONPATH=src python tools/bench_snapshot.py record [--out DIR]
    PYTHONPATH=src python tools/bench_snapshot.py compare \
        [--baseline PATH] [--tolerance 0.30] [--include-wall]

Exit codes: 0 clean, 1 regression beyond tolerance, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT_DIR = REPO_ROOT / "benchmarks" / "snapshots"

#: Fraction a ratio metric may drop (or a wall metric may rise) before
#: the comparator flags it.  Deliberately generous: the ledger exists
#: to catch order-of-magnitude mistakes (a vectorised kernel silently
#: falling back to its scalar replay), not scheduler jitter.
DEFAULT_TOLERANCE = 0.30

#: Snapshot schema version, bumped when the metric set changes shape.
SNAPSHOT_VERSION = 1


def _time_call(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_ecc(num_words: int = 4096) -> Dict[str, Dict[str, object]]:
    """Time scalar vs batched SECDED decode over one word batch."""
    import numpy as np

    from repro.ecc import HammingSECDED

    code = HammingSECDED()
    rng = np.random.default_rng(2016)
    data = rng.integers(0, 2, size=(num_words, code.batched().k),
                        dtype=np.uint8)
    batched = code.batched()
    codewords = batched.encode(data)
    scalar_words = [int("".join(map(str, row[::-1])), 2)
                    for row in codewords[:512]]

    def scalar_decode() -> None:
        for w in scalar_words:
            code.decode(w)

    scalar_s = _time_call(scalar_decode)
    batched_s = _time_call(lambda: batched.decode(codewords))
    # Normalise to per-word cost before forming the speedup: the
    # scalar loop only walks 512 words, the batch decodes num_words.
    scalar_per_word = scalar_s / len(scalar_words)
    batched_per_word = batched_s / num_words
    return {
        "ecc.scalar_decode_s": {
            "value": scalar_s, "cls": "wall", "better": "lower",
        },
        "ecc.batched_decode_s": {
            "value": batched_s, "cls": "wall", "better": "lower",
        },
        "ecc.batched_speedup": {
            "value": scalar_per_word / max(batched_per_word, 1e-12),
            "cls": "ratio", "better": "higher",
        },
    }


def _bench_faultsim(num_systems: int = 50_000) -> Dict[str, Dict[str, object]]:
    """Time scalar vs vectorized Monte-Carlo adjudication."""
    from repro.faultsim import MonteCarloConfig, XedScheme, simulate

    def run(backend: str) -> None:
        config = MonteCarloConfig(
            num_systems=num_systems, years=2.0, seed=2016,
            scaling_rate=2.0, faultsim_backend=backend,
        )
        simulate(XedScheme(), config)

    scalar_s = _time_call(lambda: run("scalar"), repeats=2)
    vector_s = _time_call(lambda: run("vectorized"), repeats=2)
    return {
        "faultsim.scalar_s": {
            "value": scalar_s, "cls": "wall", "better": "lower",
        },
        "faultsim.vectorized_s": {
            "value": vector_s, "cls": "wall", "better": "lower",
        },
        "faultsim.vectorized_speedup": {
            "value": scalar_s / max(vector_s, 1e-12),
            "cls": "ratio", "better": "higher",
        },
    }


def _bench_markov(num_systems: int = 4_000_000) -> Dict[str, Dict[str, object]]:
    """Time the analytical Markov solver vs vectorized Monte-Carlo.

    The workload is the full Fig-7 sweep (ECC-DIMM, XED, Chipkill) at
    the committed full-scale figure population: the closed-form solver
    answers it in milliseconds while the sampler pays per system, so
    the ratio is the ledger's guard against the solver silently
    regressing into per-system work.  The Monte-Carlo leg is timed
    once (it runs ~10 s; its jitter is small relative to the 100x-scale
    ratio and the comparator's tolerance band).
    """
    from repro.faultsim import (
        ChipkillScheme,
        EccDimmScheme,
        MonteCarloConfig,
        XedScheme,
        simulate,
    )

    schemes = [EccDimmScheme(), XedScheme(), ChipkillScheme()]

    def run(backend: str) -> None:
        config = MonteCarloConfig(
            num_systems=num_systems, seed=2016, faultsim_backend=backend,
        )
        for scheme in schemes:
            simulate(scheme, config)

    run("analytical")  # warm the geometry/SDC-fraction caches
    analytical_s = _time_call(lambda: run("analytical"))
    vectorized_s = _time_call(lambda: run("vectorized"), repeats=1)
    return {
        "faultsim.analytical_sweep_s": {
            "value": analytical_s, "cls": "wall", "better": "lower",
        },
        "faultsim.analytical_sweep_speedup": {
            "value": vectorized_s / max(analytical_s, 1e-12),
            "cls": "ratio", "better": "higher",
        },
    }


def _bench_perfsim(instructions: int = 50_000) -> Dict[str, Dict[str, object]]:
    """Time the scalar vs event-driven pipeline perfsim engines.

    One memory-heavy Fig-11 cell (mcf under XED) per timing, trace
    cache warmed first so the ratio tracks the event loop itself.  The
    two engines are bit-identical (enforced by the golden corpus and
    ``repro.perfsim.differential``), so the ratio is the ledger's guard
    against the pipeline backend silently losing its constant-factor
    win over the golden scalar walk (~4x in-process; grid fan-out and
    trace-cache amortisation compound it at paper scale).
    """
    from repro.perfsim import SCHEME_CONFIGS, SystemTiming, simulate_system
    from repro.perfsim.workloads import workload_by_name

    workload = workload_by_name("mcf")
    config = SCHEME_CONFIGS["xed"]
    system = SystemTiming()

    def run(backend: str) -> None:
        simulate_system(workload, config, system, instructions,
                        backend=backend)

    run("pipeline")  # warm the shared trace cache
    pipeline_s = _time_call(lambda: run("pipeline"))
    scalar_s = _time_call(lambda: run("scalar"), repeats=2)
    return {
        "perfsim.scalar_s": {
            "value": scalar_s, "cls": "wall", "better": "lower",
        },
        "perfsim.pipeline_s": {
            "value": pipeline_s, "cls": "wall", "better": "lower",
        },
        "perfsim.pipeline_speedup": {
            "value": scalar_s / max(pipeline_s, 1e-12),
            "cls": "ratio", "better": "higher",
        },
    }


def _bench_distributed(
    num_systems: int = 40_000, shard_size: int = 2_500, workers: int = 4
) -> Dict[str, Dict[str, object]]:
    """Time the distributed coordinator merging from loopback workers.

    One coordinator (main thread) serves the shard plan to ``workers``
    loopback worker threads; the metric is end-to-end merged shards
    per second, covering lease granting, the wire protocol, digest
    re-verification and the merge.  Wall-class (``better: higher``):
    absolute throughput moves with the host, so it is recorded for the
    ledger's history rather than gated by default -- the gate here is
    the run itself, which re-proves the distributed path works on
    every ``record``.
    """
    import threading

    from repro.runtime.distributed import Coordinator, JobSpec, run_worker

    spec = JobSpec(
        scheme="xed", num_systems=num_systems, shard_size=shard_size,
        seed=2016,
    )
    coordinator = Coordinator(spec, port=0, lease_shards=2)
    host, port = coordinator.address
    threads = [
        threading.Thread(
            target=run_worker, args=(host, port),
            kwargs={"worker_id": f"bench-{i}", "connect_timeout_s": 30.0},
            daemon=True,
        )
        for i in range(workers)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    coordinator.run()
    elapsed = time.perf_counter() - t0
    for thread in threads:
        thread.join(timeout=30.0)
    shards = coordinator.outcome.total_shards
    return {
        "runtime.distributed_merge_throughput": {
            "value": shards / max(elapsed, 1e-12),
            "cls": "wall", "better": "higher",
        },
    }


def collect_metrics() -> Dict[str, Dict[str, object]]:
    """Run every ledger benchmark and return the metric mapping."""
    metrics: Dict[str, Dict[str, object]] = {}
    metrics.update(_bench_ecc())
    metrics.update(_bench_faultsim())
    metrics.update(_bench_markov())
    metrics.update(_bench_perfsim())
    metrics.update(_bench_distributed())
    return metrics


def make_snapshot(metrics: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    """Wrap collected ``metrics`` in the snapshot envelope."""
    now = datetime.now(timezone.utc)
    return {
        "kind": "bench_snapshot",
        "version": SNAPSHOT_VERSION,
        "stamp": now.strftime("%Y%m%d"),
        "recorded_at": now.isoformat(timespec="seconds"),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "metrics": metrics,
    }


def find_latest_snapshot(directory: Path = SNAPSHOT_DIR) -> Optional[Path]:
    """Return the newest ``BENCH_*.json`` under ``directory``, if any."""
    candidates = sorted(directory.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def compare_snapshots(
    baseline: Dict[str, object],
    current: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
    include_wall: bool = False,
) -> Tuple[List[str], List[str]]:
    """Diff two snapshots; returns (report lines, regressed metric names).

    A ``ratio`` metric regresses when it moves beyond ``tolerance``
    in its worse direction (a speedup dropping below ``baseline *
    (1 - tolerance)``).  ``wall`` metrics are held to the same band
    only when ``include_wall`` is set.  Metrics present on one side
    only are reported but never flagged, so adding a benchmark does
    not fail the comparison that introduces it.
    """
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    lines: List[str] = []
    regressions: List[str] = []
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        if name not in base_metrics:
            lines.append(f"  {name}: (new metric, no baseline)")
            continue
        if name not in cur_metrics:
            lines.append(f"  {name}: (dropped from current run)")
            continue
        base = base_metrics[name]
        cur = cur_metrics[name]
        b, c = float(base["value"]), float(cur["value"])
        cls = base.get("cls", "wall")
        better = base.get("better", "lower")
        ratio = c / b if b else float("inf")
        flagged = False
        if cls == "ratio" or include_wall:
            if better == "higher" and c < b * (1.0 - tolerance):
                flagged = True
            if better == "lower" and c > b * (1.0 + tolerance):
                flagged = True
        marker = "  << REGRESSION" if flagged else ""
        lines.append(
            f"  {name} [{cls}]: {b:.6g} -> {c:.6g} (x{ratio:.2f}){marker}"
        )
        if flagged:
            regressions.append(name)
    return lines, regressions


def snapshot_path(out_dir: Path, stamp: str) -> Path:
    """Unoccupied ``BENCH_<stamp>[letter].json`` path under ``out_dir``.

    Two snapshots landed on the same day get letter suffixes
    (``BENCH_20260808.json``, ``BENCH_20260808b.json``, ...) so a
    same-day recording never overwrites the committed baseline it is
    meant to be compared against.
    """
    path = out_dir / f"BENCH_{stamp}.json"
    suffix = ord("b")
    while path.exists():
        path = out_dir / f"BENCH_{stamp}{chr(suffix)}.json"
        suffix += 1
    return path


def _cmd_record(args: argparse.Namespace) -> int:
    """Collect metrics and write ``BENCH_<stamp>.json``."""
    snapshot = make_snapshot(collect_metrics())
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = snapshot_path(out_dir, snapshot["stamp"])
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"recorded {len(snapshot['metrics'])} metric(s) -> {path}")
    for name, m in sorted(snapshot["metrics"].items()):
        print(f"  {name} [{m['cls']}] = {m['value']:.6g}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Re-time the ledger benchmarks and diff against the baseline."""
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        latest = find_latest_snapshot()
        if latest is None:
            print(f"no committed snapshot under {SNAPSHOT_DIR}; "
                  "run `record` first", file=sys.stderr)
            return 2
        baseline_path = latest
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline {baseline_path}: {exc}",
              file=sys.stderr)
        return 2
    current = make_snapshot(collect_metrics())
    lines, regressions = compare_snapshots(
        baseline, current,
        tolerance=args.tolerance, include_wall=args.include_wall,
    )
    print(f"baseline {baseline_path.name} vs current run "
          f"(tolerance {args.tolerance:.0%}, "
          f"wall {'included' if args.include_wall else 'informational'}):")
    print("\n".join(lines))
    if regressions:
        print(f"{len(regressions)} metric(s) regressed beyond "
              f"{args.tolerance:.0%}: {', '.join(regressions)}")
        return 1
    print("no regressions beyond tolerance")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="bench_snapshot",
        description="record/compare perf-regression ledger snapshots",
    )
    sub = parser.add_subparsers(dest="mode", required=True)
    rec = sub.add_parser("record", help="write a BENCH_<stamp>.json")
    rec.add_argument("--out", default=str(SNAPSHOT_DIR),
                     help="snapshot directory (default benchmarks/snapshots)")
    cmp_p = sub.add_parser("compare", help="diff a fresh run vs baseline")
    cmp_p.add_argument("--baseline", default=None,
                       help="baseline snapshot path (default: latest)")
    cmp_p.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                       help="allowed fractional change (default 0.30)")
    cmp_p.add_argument("--include-wall", action="store_true",
                       help="hold wall-clock metrics to the band too")
    args = parser.parse_args(argv)
    if args.mode == "record":
        return _cmd_record(args)
    return _cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
