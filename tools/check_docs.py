#!/usr/bin/env python
"""Docs lint: every flag and dotted path in the docs must exist.

Documentation rots silently: a renamed CLI flag or moved module keeps
its stale mentions in ``docs/*.md`` and ``README.md`` until a reader
trips over them.  This lint closes the loop by extracting every
``--flag`` token and every ``repro.*`` dotted path from the prose and
verifying each against the living code:

* flags must be registered somewhere in the ``repro`` argparse tree
  (all subcommands, recursively), declared by a script under
  ``tools/``, or belong to the small allowlist of third-party tools
  the docs legitimately mention (pytest-benchmark, coverage, pip);
* dotted paths must import — ``repro.faultsim.markov`` as a module,
  ``repro.faultsim.markov.solve`` as an attribute of one — with a
  trailing ``*`` accepted as a prefix wildcard over the parent's
  attributes (``repro.perfsim.configs.EXTRA_*``).

Run from the repository root (CI does, right after the docstring
gate)::

    PYTHONPATH=src python tools/check_docs.py

Exit codes: 0 clean, 1 stale references found, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import importlib
import re
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documentation surface this lint protects.
DEFAULT_DOCS: Tuple[str, ...] = ("README.md", "docs/*.md")

#: Flags owned by third-party tools the docs legitimately reference
#: (pytest/pytest-benchmark/pytest-cov/pytest-timeout, pip).  Anything
#: else must resolve against the repro argparse tree or a tools/
#: script.
EXTERNAL_FLAGS: Set[str] = {
    "--benchmark-disable",
    "--benchmark-json",
    "--benchmark-only",
    "--cov",
    "--cov-fail-under",
    "--cov-report",
    "--help",
    "--no-build-isolation",
    "--timeout",
}

#: ``--flag`` tokens: a word boundary, two dashes, then a lowercase
#: flag name.  The lookbehind keeps mid-word dashes (``a--b``) and
#: markdown horizontal rules from matching.
FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")

#: ``repro.something[.more]`` dotted paths.  A trailing ``*`` in the
#: source marks a prefix wildcard, handled in :func:`resolve_dotted`.
DOTTED_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")


def collect_cli_flags() -> Set[str]:
    """Every ``--flag`` registered in the repro argparse tree."""
    from repro.cli import build_parser

    flags: Set[str] = set()

    def walk(parser: argparse.ArgumentParser) -> None:
        for action in parser._actions:
            for option in action.option_strings:
                if option.startswith("--"):
                    flags.add(option)
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    walk(sub)

    walk(build_parser())
    return flags


def collect_tool_flags(tools_dir: Optional[Path] = None) -> Set[str]:
    """Every ``--flag`` declared by ``add_argument`` in tools/ scripts.

    A textual scrape rather than an import: the tools are standalone
    scripts (some with side-effectful ``__main__`` blocks), and their
    ``add_argument("--flag", ...)`` calls are all literal.
    """
    tools_dir = tools_dir or (REPO_ROOT / "tools")
    flags: Set[str] = set()
    for script in sorted(tools_dir.glob("*.py")):
        text = script.read_text(encoding="utf-8")
        flags.update(
            re.findall(r"add_argument\(\s*['\"](--[a-z0-9-]+)", text)
        )
    return flags


def resolve_dotted(path: str, wildcard: bool = False) -> bool:
    """Whether a ``repro.*`` dotted path exists in the import graph.

    Tries the longest importable module prefix, then follows the
    remaining components with ``getattr``.  With ``wildcard`` the last
    component is a prefix: the parent must expose *some* attribute
    starting with it.
    """
    parts = path.split(".")
    prefix_parts, leaf = (parts[:-1], parts[-1]) if wildcard else (parts, "")
    for i in range(len(prefix_parts), 0, -1):
        module_name = ".".join(prefix_parts[:i])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in prefix_parts[i:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        if wildcard:
            return any(name.startswith(leaf) for name in dir(obj))
        return True
    return False


def expand_docs(patterns: Iterable[str]) -> List[Path]:
    """Resolve doc paths: globs relative to the repo root, or absolute."""
    paths: List[Path] = []
    for pattern in patterns:
        candidate = Path(pattern)
        if candidate.is_absolute():
            if not candidate.is_file():
                raise FileNotFoundError(pattern)
            paths.append(candidate)
            continue
        matches = sorted(REPO_ROOT.glob(pattern))
        if not matches and "*" not in pattern:
            raise FileNotFoundError(pattern)
        paths.extend(matches)
    return paths


def check_file(
    doc: Path, cli_flags: Set[str], tool_flags: Set[str]
) -> List[str]:
    """Lint one markdown file; returns ``path:line: message`` strings."""
    problems: List[str] = []
    known_flags = cli_flags | tool_flags | EXTERNAL_FLAGS
    try:
        rel = doc.relative_to(REPO_ROOT)
    except ValueError:
        rel = doc
    for lineno, line in enumerate(
        doc.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in FLAG_RE.finditer(line):
            flag = match.group(0)
            if flag not in known_flags:
                problems.append(
                    f"{rel}:{lineno}: unknown flag {flag} (not in the "
                    "repro argparse tree, tools/ scripts, or the "
                    "external-tool allowlist)"
                )
        for match in DOTTED_RE.finditer(line):
            path = match.group(0)
            wildcard = line[match.end() : match.end() + 1] == "*"
            if not resolve_dotted(path, wildcard=wildcard):
                suffix = "*" if wildcard else ""
                problems.append(
                    f"{rel}:{lineno}: unresolvable reference "
                    f"{path}{suffix} (does not import)"
                )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="check_docs",
        description="verify doc-mentioned flags and repro.* paths exist",
    )
    parser.add_argument(
        "docs", nargs="*", default=list(DEFAULT_DOCS),
        help="doc files or globs relative to the repo root "
             "(default: README.md docs/*.md)",
    )
    args = parser.parse_args(argv)
    try:
        docs = expand_docs(args.docs)
    except FileNotFoundError as exc:
        print(f"no such doc: {exc}", file=sys.stderr)
        return 2
    cli_flags = collect_cli_flags()
    tool_flags = collect_tool_flags()
    problems: List[str] = []
    for doc in docs:
        problems.extend(check_file(doc, cli_flags, tool_flags))
    for problem in problems:
        print(problem)
    checked = len(docs)
    if problems:
        print(
            f"{len(problems)} stale reference(s) across {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"{checked} doc file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
