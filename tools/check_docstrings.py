#!/usr/bin/env python
"""Docstring-coverage gate for the public API.

Walks one or more source trees and reports every module, public class
and public function/method (name not starting with ``_``) that lacks a
docstring.  Exits non-zero when anything is missing, so CI can enforce
that the public surface stays documented as the reproduction grows.

Usage::

    python tools/check_docstrings.py src/repro [more/trees ...]

Each violation is printed as ``path:lineno kind name`` -- clickable in
most editors and trivially greppable.  ``__init__`` and other dunders
are exempt (they document themselves through their class), as is any
definition nested inside a private scope.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: (path, lineno, kind, qualified name) for one missing docstring.
Violation = Tuple[Path, int, str, str]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_public(name: str) -> bool:
    """True for names the package exports implicitly (no ``_`` prefix)."""
    return not name.startswith("_")


def _walk_scope(
    node: ast.AST, prefix: str
) -> Iterator[Tuple[ast.AST, str, str]]:
    """Yield (node, kind, qualified name) for public defs under ``node``.

    Recurses only into *public* classes: anything nested inside a
    private class (or inside a function body) is implementation detail
    and not part of the documented surface.
    """
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.ClassDef):
            if not _is_public(child.name):
                continue
            qualname = f"{prefix}{child.name}"
            yield child, "class", qualname
            yield from _walk_scope(child, f"{qualname}.")
        elif isinstance(child, _FUNC_NODES):
            if not _is_public(child.name):
                continue
            kind = "method" if prefix else "function"
            yield child, kind, f"{prefix}{child.name}"


def check_file(path: Path) -> List[Violation]:
    """Return every missing-docstring violation in one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    violations: List[Violation] = []
    if ast.get_docstring(tree) is None:
        violations.append((path, 1, "module", path.stem))
    for node, kind, qualname in _walk_scope(tree, ""):
        if ast.get_docstring(node) is None:
            violations.append((path, node.lineno, kind, qualname))
    return violations


def check_tree(root: Path) -> List[Violation]:
    """Check every ``.py`` file under ``root`` (or ``root`` itself)."""
    files = [root] if root.is_file() else sorted(root.rglob("*.py"))
    violations: List[Violation] = []
    for path in files:
        violations.extend(check_file(path))
    return violations


def main(argv: List[str]) -> int:
    """CLI entry point: check each tree, print violations, exit 0/1."""
    if not argv:
        print("usage: check_docstrings.py TREE [TREE ...]", file=sys.stderr)
        return 2
    violations: List[Violation] = []
    for arg in argv:
        root = Path(arg)
        if not root.exists():
            print(f"check_docstrings: no such path: {root}", file=sys.stderr)
            return 2
        violations.extend(check_tree(root))
    for path, lineno, kind, qualname in violations:
        print(f"{path}:{lineno} {kind} {qualname}")
    if violations:
        print(
            f"check_docstrings: {len(violations)} public definition(s) "
            "missing docstrings",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
